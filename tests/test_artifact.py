"""The serialized-artifact layer: one portable IR for every backend.

:mod:`repro.core.artifact` turns a :class:`LoweredProgram` into a
schema-versioned JSON document. These tests pin the contract:

* **round-trip fidelity** — for every workload × schedule,
  ``loads(dumps(x))`` reconstructs a program whose re-serialized payload
  is byte-identical, that executes bit-identically to the live object on
  ``run_lowered``, and that the DES cost model prices to the *same*
  makespan;
* **real-process parity** — deserialized artifacts drive ``run_spmd``
  (4 real ranks) bit-identically to the live schedule, and the
  generated SPMD module ships its artifact to the rank workers;
* **identity** — ``content_hash`` is invariant under dict reordering
  and across processes; ``structural_hash`` *is* the autotuner's dedup
  signature; elastic recovery memoizes re-lowered artifacts on it;
* **the golden files** — committed schema-v1 artifacts under
  ``tests/golden/`` must keep loading, executing and hashing the same
  forever: they are the forward-compatibility promise newer schema
  versions must not break.
"""

import json
import os
import random
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.cluster import Cluster
from repro.core import FP32, artifact
from repro.core.artifact import Artifact, ArtifactError
from repro.core.autotuner import Autotuner
from repro.core.codegen import CodeGenerator
from repro.core.tensor import Tensor
from repro.core.transforms import Schedule
from repro.errors import CoCoNetError
from repro.perf.program_cost import ProgramCostModel
from repro.runtime import Executor, FaultPlan
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.moe import MoEWorkload
from repro.workloads.pipeline import PipelineWorkload

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_ADAM = os.path.join(GOLDEN_DIR, "adam_fused.repro.json")
GOLDEN_MOE = os.path.join(GOLDEN_DIR, "moe_overlapped.repro.json")

#: the committed goldens' recorded identities — regenerating the files
#: (``python benchmarks/bench_artifact.py --regen-goldens``) must
#: reproduce these exactly, and any schema bump must keep loading them
GOLDEN_HASHES = {
    GOLDEN_ADAM: (
        "sha256:66a18ac91e350cae3a32a8b04ee460d251602a3fcbb"
        "3e2b8f178eea453b643cb",
        "sha256:2a3b679e498ac5bf285ae122f2429dbde3f95895eb9"
        "3e3cdb110d5efd5202c63",
    ),
    GOLDEN_MOE: (
        "sha256:0b859f8b6ddce8a62813beb3a3b108ff4317c9e4bde"
        "a31213b5ffe355722400a",
        "sha256:78a77a4f80dd26cd636ab6ef6c52c78762be10f8876"
        "254e0b46f960a2da320bc",
    ),
}


@pytest.fixture
def rng():
    return np.random.RandomState(0xA27F)


def optimizer_inputs(rng, n=4, N=64):
    return dict(
        g=rng.randn(n, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )


def attention_inputs(rng, hidden=16, batch=4, seq=8):
    return {
        "w": rng.randn(hidden, hidden),
        "b": rng.randn(hidden),
        "in": rng.randn(batch, seq, hidden),
        "r": rng.randn(batch, seq, hidden),
    }


def moe_inputs(rng, ws=4, capacity=3, model_dim=6, ffn_dim=8):
    return {
        "x": rng.randn(ws, ws, capacity, model_dim),
        "w1": rng.randn(ws, model_dim, ffn_dim),
        "w2": rng.randn(ws, ffn_dim, model_dim),
    }


def assert_artifact_parity(sched, inputs):
    """loads(dumps(sched)) ≡ sched: payload, execution, predicted cost."""
    program = sched.program if isinstance(sched, Schedule) else sched
    art = artifact.loads(artifact.dumps(sched))
    # lossless: re-serializing the reconstruction is byte-identical
    assert artifact.to_payload(art.lowered()) == art.payload
    assert artifact.content_hash(artifact.to_payload(art.lowered())) == \
        art.content_hash
    ex = Executor()
    live = ex.run_lowered(sched, inputs, allow_downcast=True)
    again = ex.run_lowered(art, inputs, allow_downcast=True)
    for o in program.outputs:
        np.testing.assert_array_equal(
            again.output(o.name), live.output(o.name), err_msg=o.name
        )
    for t in program.inputs:
        if isinstance(t, Tensor):
            np.testing.assert_array_equal(
                again.tensor_state(t.name),
                live.tensor_state(t.name),
                err_msg=f"state {t.name}",
            )
    # the cost model prices both identically
    model = ProgramCostModel(Cluster(1))
    assert model.time(art) == model.time(sched)


class TestRoundTrip:
    """Every workload × original/named schedules, lowered interpreter."""

    def test_adam_all_schedules(self, rng):
        wl = AdamWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        assert_artifact_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_artifact_parity(sched, inputs)

    def test_lamb_all_schedules(self, rng):
        wl = LambWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        assert_artifact_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_artifact_parity(sched, inputs)

    def test_attention_all_schedules(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32,
                                     dropout_seed=6)
        inputs = attention_inputs(rng)
        assert_artifact_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_artifact_parity(sched, inputs)

    def test_moe_all_schedules(self, rng):
        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        inputs = moe_inputs(rng)
        assert_artifact_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_artifact_parity(sched, inputs)
        assert_artifact_parity(wl.schedule_hierarchical(node_size=2),
                               inputs)

    def test_pipeline_all_schedules(self, rng):
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32,
            dropout_seed=5,
        )
        inputs = {
            "in": rng.randn(4, 2, 8, 16),
            "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }
        assert_artifact_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_artifact_parity(sched, inputs)

    def test_autotuned_schedule(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32,
                                     dropout_seed=6)
        result = Autotuner(Cluster(1)).tune(wl.program)
        assert_artifact_parity(result.best.schedule,
                               attention_inputs(rng))


class TestSpmdFromArtifact:
    """Deserialized artifacts drive real rank processes bit-identically."""

    def test_adam_fused_4_ranks(self, rng):
        sched = AdamWorkload.build(64, 4).schedule_fused()
        inputs = optimizer_inputs(rng)
        art = artifact.loads(artifact.dumps(sched))
        ex = Executor()
        oracle = ex.run_lowered(sched, inputs, allow_downcast=True)
        res = ex.run_spmd(art, inputs, allow_downcast=True)
        for name in oracle.output_names:
            np.testing.assert_array_equal(
                res.output(name), oracle.output(name), err_msg=name
            )

    def test_moe_overlapped_4_ranks(self, rng):
        sched = MoEWorkload.build(
            3, 6, 8, world_size=4, dtype=FP32
        ).schedule_overlapped()
        inputs = moe_inputs(rng)
        art = artifact.loads(artifact.dumps(sched))
        ex = Executor()
        oracle = ex.run_lowered(sched, inputs, allow_downcast=True)
        res = ex.run_spmd(art, inputs, allow_downcast=True)
        for name in oracle.output_names:
            np.testing.assert_array_equal(
                res.output(name), oracle.output(name), err_msg=name
            )

    def test_generated_module_ships_its_artifact(self, monkeypatch):
        # run() hands the serialized artifact to spmd.launch so rank
        # workers rebuild their module from the portable IR, not from
        # pickled live objects
        from repro.runtime import spmd as spmd_mod

        gen = CodeGenerator(target="spmd").generate(
            AdamWorkload.build(64, 4).schedule_fused()
        )
        seen = {}

        def fake_launch(source, program, inputs, **kwargs):
            seen.update(kwargs, source=source)
            return "launched"

        monkeypatch.setattr(spmd_mod, "launch", fake_launch)
        assert gen.run({}) == "launched"
        text = seen["artifact_text"]
        assert text is not None
        shipped = artifact.loads(text)
        assert shipped.program.name == "adam"
        assert seen["protocol"] == "Simple"


class TestHashes:
    """content_hash: canonical identity. structural_hash: dedup key."""

    def test_structural_hash_is_the_tuner_dedup_signature(self):
        sched = AdamWorkload.build(64, 4).schedule_fused()
        art = artifact.loads(artifact.dumps(sched))
        assert (
            Autotuner(Cluster(1))._plan_signature(sched)
            == art.structural_hash
        )

    def test_rebuilt_schedule_keeps_the_golden_structural_hash(self):
        # generated value names drift with a global counter, but the
        # name-free structural hash of a freshly built schedule must
        # still match what the golden recorded when it was written
        sched = AdamWorkload.build(64, 4).schedule_fused()
        assert (
            artifact.structural_hash(sched.lowered())
            == GOLDEN_HASHES[GOLDEN_ADAM][1]
        )
        # the moe golden was written at the workload's default dtype
        sched = MoEWorkload.build(
            3, 6, 8, world_size=4
        ).schedule_overlapped()
        assert (
            artifact.structural_hash(sched.lowered())
            == GOLDEN_HASHES[GOLDEN_MOE][1]
        )

    def test_hashes_stable_across_processes(self):
        # two fresh interpreters serialize the same workload to the
        # same content hash — no id()/set ordering leaks into the file.
        # The recipe mirrors the golden's exactly: generated names carry
        # a process-global counter, so the content hash is reproducible
        # only from the same build sequence in a fresh process.
        script = (
            "from repro.core import artifact\n"
            "from repro.workloads.adam import AdamWorkload\n"
            "sched = AdamWorkload.build(64, 4).schedules()"
            "['fuse(RS-Adam-AG)']\n"
            "a = artifact.as_artifact(sched)\n"
            "print(a.content_hash); print(a.structural_hash)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(GOLDEN_DIR), os.pardir, "src"
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
            ).stdout.splitlines()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0][0] == GOLDEN_HASHES[GOLDEN_ADAM][0]
        assert runs[0][1] == GOLDEN_HASHES[GOLDEN_ADAM][1]

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_content_hash_ignores_dict_order(self, seed):
        def shuffled(obj, r):
            if isinstance(obj, dict):
                items = list(obj.items())
                r.shuffle(items)
                return {k: shuffled(v, r) for k, v in items}
            if isinstance(obj, list):
                return [shuffled(v, r) for v in obj]
            return obj

        with open(GOLDEN_ADAM) as f:
            payload = json.load(f)["payload"]
        reordered = shuffled(payload, random.Random(seed))
        assert artifact.content_hash(reordered) == \
            artifact.content_hash(payload)

    @given(indent=st.sampled_from([None, 1, 2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_dumps_loads_fixpoint(self, indent):
        art = artifact.load(GOLDEN_ADAM)
        again = artifact.loads(art.dumps(indent=indent))
        assert again == art  # content-hash equality
        assert again.dumps() == art.dumps()
        assert again.structural_hash == art.structural_hash


class TestGoldenFiles:
    """Committed v1 artifacts: the forward-compatibility promise."""

    @pytest.mark.parametrize("path", [GOLDEN_ADAM, GOLDEN_MOE])
    def test_loads_hashes_and_executes(self, path):
        art = artifact.load(path)
        assert art.schema_version == 1
        content, structural = GOLDEN_HASHES[path]
        assert art.content_hash == content
        assert art.structural_hash == structural
        # the reconstruction executes and re-serializes losslessly
        assert artifact.to_payload(art.lowered()) == art.payload
        from repro.cli import _seeded_inputs

        inputs = _seeded_inputs(art.program, seed=0)
        res = Executor().run_lowered(art, inputs, allow_downcast=True)
        assert res.output_names

    def test_golden_run_matches_raw_dfg_oracle(self):
        # the artifact's lowered execution agrees with running the
        # reconstructed program on the unscheduled DFG interpreter
        from repro.cli import _seeded_inputs

        art = artifact.load(GOLDEN_ADAM)
        inputs = _seeded_inputs(art.program, seed=0)
        ex = Executor()
        low = ex.run_lowered(art, inputs, allow_downcast=True)
        dfg = ex.run(art.program, inputs, allow_downcast=True)
        for name in low.output_names:
            np.testing.assert_array_equal(
                low.output(name), dfg.output(name), err_msg=name
            )


class TestElasticArtifactCache:
    """Recovery memoizes re-lowered artifacts on (structural hash, ws)."""

    def _relower(self, rng_seed, N=56):
        def relower(ws):
            wl = AdamWorkload.build(N, ws)
            rng = np.random.RandomState(rng_seed)
            return wl.program, dict(
                g=rng.randn(ws, N) * 0.1,
                p=rng.randn(N),
                m=rng.randn(N) * 0.01,
                v=np.abs(rng.randn(N)) * 0.01,
                lr=0.01,
                t=3.0,
            )
        return relower

    def test_second_recovery_hits_the_cache(self):
        ex = Executor()
        relower = self._relower(5)
        kwargs = dict(
            allow_downcast=True, soft_timeout=0.5, timeout=30.0,
            elastic=True, relower=relower,
        )

        def recover():
            rng = np.random.RandomState(5)
            return ex.run_spmd(
                AdamWorkload.build(56, 8).program,
                dict(
                    g=rng.randn(8, 56) * 0.1,
                    p=rng.randn(56),
                    m=rng.randn(56) * 0.01,
                    v=np.abs(rng.randn(56)) * 0.01,
                    lr=0.01,
                    t=3.0,
                ),
                fault_plan=FaultPlan(seed=11).die(3, at_site="g"),
                **kwargs,
            )

        first = recover()
        assert first.elastic["world_size"] == 7
        assert first.elastic["artifact_cache"] == "miss"
        assert ex.elastic_cache_misses == 1
        assert ex.elastic_cache_hits == 0

        second = recover()
        assert second.elastic["artifact_cache"] == "hit"
        assert ex.elastic_cache_hits == 1
        assert ex.elastic_cache_misses == 1
        for name in first.output_names:
            np.testing.assert_array_equal(
                second.output(name), first.output(name), err_msg=name
            )


class TestErrors:
    def _golden_doc(self):
        with open(GOLDEN_ADAM) as f:
            return json.load(f)

    def test_rejects_unknown_schema_version(self):
        doc = self._golden_doc()
        doc["schema_version"] = 99
        with pytest.raises(ArtifactError, match="schema version 99"):
            artifact.loads(json.dumps(doc))

    def test_lowering_unknown_version_names_supported_ones(self):
        art = Artifact(
            schema_version=42, payload={}, content_hash="x",
            structural_hash="y",
        )
        with pytest.raises(ArtifactError, match=r"reads \[1\]"):
            art.lowered()

    def test_detects_payload_tampering(self):
        doc = self._golden_doc()
        doc["payload"]["program"]["name"] = "edited"
        with pytest.raises(ArtifactError, match="content hash mismatch"):
            artifact.loads(json.dumps(doc))

    def test_rejects_foreign_documents(self):
        with pytest.raises(ArtifactError, match="not a coconet"):
            artifact.loads(json.dumps({"format": "something-else"}))
        with pytest.raises(ArtifactError, match="not valid JSON"):
            artifact.loads("{nope")
        with pytest.raises(ArtifactError, match="schema_version"):
            artifact.loads(json.dumps(
                {"format": artifact.FORMAT, "schema_version": "one"}
            ))

    def test_launch_index_reports_unknown_kernels(self):
        low = AdamWorkload.build(64, 4).schedule_fused().lowered()
        first = low.launches()[0]
        assert low.launch_of(first.name) is first
        with pytest.raises(CoCoNetError, match="no launch for kernel"):
            low.launch_of("no-such-kernel")


class TestCli:
    """repro-run against the committed goldens (in-process)."""

    def _digest(self, out):
        for line in out.splitlines():
            if line.startswith("digest:"):
                return line.split()[-1]
        raise AssertionError(f"no digest line in {out!r}")

    def test_describe(self, capsys):
        assert cli_main(["describe", GOLDEN_ADAM]) == 0
        out = capsys.readouterr().out
        assert "artifact: adam (schema v1)" in out
        assert GOLDEN_HASHES[GOLDEN_ADAM][0] in out

    def test_hash_verifies(self, capsys):
        assert cli_main(["hash", GOLDEN_MOE]) == 0
        out = capsys.readouterr().out
        assert GOLDEN_HASHES[GOLDEN_MOE][0] in out
        assert "verified" in out

    def test_cost(self, capsys):
        assert cli_main(["cost", GOLDEN_ADAM, "--nodes", "1"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_run_digest_is_deterministic(self, capsys):
        assert cli_main(["run", GOLDEN_ADAM, "--seed", "7"]) == 0
        first = self._digest(capsys.readouterr().out)
        assert cli_main(["run", GOLDEN_ADAM, "--seed", "7"]) == 0
        assert self._digest(capsys.readouterr().out) == first

    def test_spmd_backend_matches_lowered_digest(self, capsys):
        assert cli_main(["run", GOLDEN_ADAM]) == 0
        lowered = self._digest(capsys.readouterr().out)
        assert cli_main(["run", GOLDEN_ADAM, "--backend", "spmd"]) == 0
        assert self._digest(capsys.readouterr().out) == lowered

    def test_missing_file_is_a_clean_error(self, capsys):
        assert cli_main(["describe", "/no/such/artifact.json"]) == 1
        assert "error:" in capsys.readouterr().err
