"""Smoke tests: every shipped example runs end to end and asserts its
own invariants (examples contain `assert`s on numerics)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


def _env():
    """Run examples with src/ importable even when pytest was launched
    without PYTHONPATH (pytest's ``pythonpath`` ini does not propagate
    to subprocesses)."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR if not existing else SRC_DIR + os.pathsep + existing
    )
    return env

EXAMPLES = [
    "quickstart.py",
    "data_parallel_adam.py",
    "model_parallel_attention.py",
    "pipeline_parallel_gpt3.py",
    "moe_alltoall.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
        env=_env(),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_speedup():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=300, env=_env(),
    )
    assert "Semantics preserved" in proc.stdout
    assert "speedup" in proc.stdout.lower()


def test_pipeline_example_reports_table5():
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(EXAMPLES_DIR, "pipeline_parallel_gpt3.py"),
        ],
        capture_output=True, text=True, timeout=300, env=_env(),
    )
    assert "GPT-3 175B" in proc.stdout
    assert "paper reports" in proc.stdout
