"""Tests for the NCCL simulator: protocols, rings, chunking, step
schedules, cost model and auto-configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.process_group import ProcessGroup, world
from repro.nccl import (
    ALL_PROTOCOLS,
    LL,
    LL128,
    SIMPLE,
    Algorithm,
    build_ring,
    choose_config,
    chunk_order,
    collective_time,
    p2p_time,
    tile_chunks,
)
from repro.nccl import algorithms, chunking
from repro.nccl.cost_model import ring_bus_bandwidth
from repro.runtime import collectives


class TestProtocols:
    def test_pack_sizes(self):
        # §5.2: "64-bit for LL, 128-bit for LL128 and Simple"
        assert LL.pack_bytes == 8
        assert LL128.pack_bytes == 16
        assert SIMPLE.pack_bytes == 16

    def test_ll_efficiency_is_half(self):
        # LL spends half of each pack on a flag
        assert LL.bw_efficiency == 0.5

    def test_ll128_efficiency(self):
        assert LL128.bw_efficiency == pytest.approx(120 / 128)

    def test_latency_ordering(self):
        # "LL has the lowest latency and Simple provides the highest
        # bandwidth"
        assert (
            LL.hop_latency_intra
            < LL128.hop_latency_intra
            < SIMPLE.hop_latency_intra
        )
        assert LL.bw_efficiency < LL128.bw_efficiency < SIMPLE.bw_efficiency

    def test_elements_per_pack_mixed_precision(self):
        assert LL.elements_per_pack(2) == 4    # 4 fp16 per 8B pack
        assert LL.elements_per_pack(4) == 2
        assert SIMPLE.elements_per_pack(4) == 4

    def test_ll128_stages_through_shared_memory(self):
        assert LL128.shared_memory_staging
        assert not SIMPLE.shared_memory_staging


class TestRing:
    def test_single_node_ring_all_intra(self):
        ring = build_ring(Cluster(1), world(16))
        assert ring.inter_edges == 0
        assert ring.intra_edges == 16

    def test_multi_node_ring_one_inter_edge_per_node(self):
        ring = build_ring(Cluster(4), world(64))
        assert ring.inter_edges == 4
        assert ring.intra_edges == 60

    def test_subgroup_ring(self):
        # pipeline group on the second node
        ring = build_ring(Cluster(2), ProcessGroup(16, 16, 32))
        assert ring.inter_edges == 0

    def test_neighbours(self):
        ring = build_ring(Cluster(1), world(4))
        assert ring.next_rank(3) == 0
        assert ring.prev_rank(0) == 3

    def test_average_hop_latency_weights_edges(self):
        ring = build_ring(Cluster(2), world(32))
        avg = ring.average_hop_latency(SIMPLE)
        assert SIMPLE.hop_latency_intra < avg < SIMPLE.hop_latency_inter


class TestChunking:
    def test_chunk_order_starts_at_own_rank(self):
        # Figure 9: "Rank 0 starts with chunk 0 ... Rank 1 starts chunk 1"
        assert chunk_order(0, 8)[0] == 0
        assert chunk_order(1, 8)[0] == 1
        assert chunk_order(3, 8) == [3, 4, 5, 6, 7, 0, 1, 2]

    def test_chunk_order_is_permutation(self):
        for r in range(8):
            assert sorted(chunk_order(r, 8)) == list(range(8))

    def test_tile_chunks_counts(self):
        tiles, per = tile_chunks(32 * 1024 * 1024, 8, channels=2)
        assert per == 8
        assert tiles == 4  # 32 MiB over 2x4 MiB buffer tiles

    def test_chunk_schedule_covers_all_chunks(self):
        sched = chunking.chunk_schedule(
            rank=2, total_bytes=16 * 1024 * 1024, group_size=8, channels=1
        )
        assert sorted(sched.sequence) == list(range(sched.total_chunks))
        assert sched.sequence[0] == 2  # starts at own chunk of tile 0

    def test_matmul_chunk_grid(self):
        rows, cols = chunking.matmul_chunk_grid(8192, 3072, 8)
        assert rows == 1024 and cols == 3072


class TestStepSchedules:
    def test_allreduce_step_count(self):
        # ring AllReduce takes 2(n-1) steps
        assert algorithms.num_steps("allreduce", 8) == 14
        assert algorithms.num_steps("reducescatter", 8) == 7
        assert algorithms.num_steps("allgather", 8) == 7

    def test_single_rank_no_steps(self):
        assert algorithms.num_steps("allreduce", 1) == 0

    def test_reduce_scatter_schedule_shape(self):
        steps = algorithms.reduce_scatter_steps(4)
        assert len(steps) == 4 * 3
        first_round = [s for s in steps if s.index == 0]
        # rank r sends chunk r at step 0
        assert all(s.chunk == s.src for s in first_round)

    def test_ring_simulation_matches_reference(self):
        rng = np.random.RandomState(3)
        n = 4
        values = [rng.randn(8).astype(np.float32) for _ in range(n)]
        ring_out = algorithms.simulate_ring_allreduce(values)
        ref = collectives.allreduce(
            {r: values[r] for r in range(n)}, world(n), "+", np.float32
        )
        for r in range(n):
            np.testing.assert_allclose(ring_out[r], ref[r], rtol=1e-6)

    @given(n=st.integers(2, 8), seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_ring_simulation_property(self, n, seed):
        rng = np.random.RandomState(seed)
        values = [rng.randn(n * 2).astype(np.float64) for _ in range(n)]
        ring_out = algorithms.simulate_ring_allreduce(values)
        expected = np.sum(values, axis=0)
        for r in range(n):
            np.testing.assert_allclose(ring_out[r], expected, rtol=1e-9)

    def test_tree_depth(self):
        assert algorithms.tree_depth(1) == 0
        assert algorithms.tree_depth(2) == 1
        assert algorithms.tree_depth(256) == 8
        assert algorithms.tree_depth(200) == 8


class TestCostModel:
    def setup_method(self):
        self.cluster = Cluster(16)
        self.ring = build_ring(self.cluster, world(256))

    def test_time_increases_with_size(self):
        times = [
            collective_time(
                "allreduce", 2**e, self.cluster, self.ring, SIMPLE, 8
            )
            for e in range(10, 31, 4)
        ]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_allreduce_costs_twice_reducescatter_bandwidth(self):
        big = 2**30
        ar = collective_time(
            "allreduce", big, self.cluster, self.ring, SIMPLE, 8
        )
        rs = collective_time(
            "reducescatter", big, self.cluster, self.ring, SIMPLE, 8
        )
        assert ar / rs == pytest.approx(2.0, rel=0.05)

    def test_ll_beats_simple_at_small_sizes(self):
        small = 2**12
        t_ll = collective_time(
            "allreduce", small, self.cluster, self.ring, LL, 8
        )
        t_simple = collective_time(
            "allreduce", small, self.cluster, self.ring, SIMPLE, 8
        )
        assert t_ll < t_simple

    def test_simple_beats_ll_at_large_sizes(self):
        big = 2**30
        t_ll = collective_time(
            "allreduce", big, self.cluster, self.ring, LL, 8
        )
        t_simple = collective_time(
            "allreduce", big, self.cluster, self.ring, SIMPLE, 8
        )
        assert t_simple < t_ll

    def test_tree_beats_ring_latency_at_scale(self):
        small = 2**10
        t_tree = collective_time(
            "allreduce", small, self.cluster, self.ring, LL, 8,
            Algorithm.TREE,
        )
        t_ring = collective_time(
            "allreduce", small, self.cluster, self.ring, LL, 8,
            Algorithm.RING,
        )
        assert t_tree < t_ring

    def test_tree_rejects_allgather(self):
        from repro.errors import CoCoNetError

        with pytest.raises(CoCoNetError):
            collective_time(
                "allgather", 2**20, self.cluster, self.ring, LL, 8,
                Algorithm.TREE,
            )

    def test_busbw_capped_by_nics_across_nodes(self):
        bw = ring_bus_bandwidth(self.cluster, self.ring, SIMPLE, 64)
        # min(150 GB/s fabric, 8 NICs x 12.5) * impl_eff
        assert bw <= 100e9

    def test_busbw_single_node_higher(self):
        ring1 = build_ring(Cluster(1), world(16))
        bw1 = ring_bus_bandwidth(Cluster(1), ring1, SIMPLE, 64)
        bw16 = ring_bus_bandwidth(self.cluster, self.ring, SIMPLE, 64)
        assert bw1 > bw16

    def test_channels_scale_bandwidth(self):
        bw2 = ring_bus_bandwidth(self.cluster, self.ring, SIMPLE, 2)
        bw8 = ring_bus_bandwidth(self.cluster, self.ring, SIMPLE, 8)
        assert bw8 > bw2

    def test_p2p_pairs_share_nics(self):
        one = p2p_time(2**26, self.cluster, concurrent_pairs=1)
        sixteen = p2p_time(2**26, self.cluster, concurrent_pairs=16)
        assert sixteen > one * 10

    def test_p2p_intra_node_faster(self):
        intra = p2p_time(2**26, self.cluster, 16, intra_node=True)
        inter = p2p_time(2**26, self.cluster, 16, intra_node=False)
        assert intra < inter


class TestAutoConfig:
    def test_small_sizes_choose_low_latency(self):
        cl = Cluster(16)
        cfg, _ = choose_config("allreduce", 2**11, cl, world(256))
        assert cfg.protocol is LL
        assert cfg.algorithm is Algorithm.TREE

    def test_large_sizes_choose_bandwidth(self):
        cl = Cluster(16)
        cfg, _ = choose_config("allreduce", 2**31, cl, world(256))
        assert cfg.protocol is SIMPLE
        assert cfg.algorithm is Algorithm.RING

    def test_reducescatter_is_ring_only(self):
        cl = Cluster(16)
        cfg, _ = choose_config("reducescatter", 2**11, cl, world(256))
        assert cfg.algorithm is Algorithm.RING

    def test_best_time_is_minimum(self):
        cl = Cluster(1)
        cfg, best = choose_config("allreduce", 2**20, cl, world(16))
        ring = build_ring(cl, world(16))
        for proto in ALL_PROTOCOLS:
            for ch in (2, 8, 64):
                t = collective_time(
                    "allreduce", 2**20, cl, ring, proto, ch
                )
                assert best <= t + 1e-12
