"""Property tests on the cost model: the structural facts every
benchmark shape depends on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.process_group import ProcessGroup, world
from repro.nccl import LL, LL128, SIMPLE, build_ring, collective_time, p2p_time
from repro.nccl.config import choose_config
from repro.nccl.cost_model import Algorithm
from repro.perf.kernel_cost import CostParams, pointwise_time


class TestCollectiveProperties:
    @given(
        e1=st.integers(10, 28),
        delta=st.integers(1, 4),
        nodes=st.sampled_from([1, 2, 16]),
        proto=st.sampled_from([LL, LL128, SIMPLE]),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_size(self, e1, delta, nodes, proto):
        cluster = Cluster(nodes)
        ring = build_ring(cluster, world(cluster.num_ranks))
        t1 = collective_time(
            "allreduce", 2**e1, cluster, ring, proto, 8
        )
        t2 = collective_time(
            "allreduce", 2 ** (e1 + delta), cluster, ring, proto, 8
        )
        assert t2 >= t1

    @given(
        e=st.integers(12, 30),
        proto=st.sampled_from([LL, LL128, SIMPLE]),
        channels=st.sampled_from([2, 8, 32]),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce_equals_rs_plus_ag_bandwidth(self, e, proto, channels):
        """The split transformation's cost-neutrality in the bandwidth
        regime: AR wire time == RS + AG wire time."""
        cluster = Cluster(16)
        ring = build_ring(cluster, world(256))
        ar = collective_time(
            "allreduce", 2**e, cluster, ring, proto, channels,
            include_setup=False,
        )
        rs = collective_time(
            "reducescatter", 2**e, cluster, ring, proto, channels,
            include_setup=False,
        )
        ag = collective_time(
            "allgather", 2**e, cluster, ring, proto, channels,
            include_setup=False,
        )
        assert ar == pytest.approx(rs + ag, rel=1e-6)

    @given(size=st.integers(2, 256))
    @settings(max_examples=30, deadline=None)
    def test_choose_config_never_fails(self, size):
        cluster = Cluster(16)
        if size > cluster.num_ranks:
            size = cluster.num_ranks
        group = ProcessGroup(0, size, cluster.num_ranks)
        cfg, t = choose_config("allreduce", 2**20, cluster, group)
        assert t > 0

    @given(
        pairs1=st.integers(1, 8),
        extra=st.integers(1, 8),
        nbytes=st.integers(2**10, 2**28),
    )
    @settings(max_examples=30, deadline=None)
    def test_p2p_monotone_in_contention(self, pairs1, extra, nbytes):
        cluster = Cluster(2)
        t1 = p2p_time(nbytes, cluster, concurrent_pairs=pairs1)
        t2 = p2p_time(nbytes, cluster, concurrent_pairs=pairs1 + extra)
        assert t2 >= t1

    def test_subgroup_cheaper_than_world(self):
        cluster = Cluster(16)
        sub = ProcessGroup(0, 16, 256)
        _, t_sub = choose_config("allreduce", 2**26, cluster, sub)
        _, t_world = choose_config("allreduce", 2**26, cluster, world(256))
        assert t_sub < t_world


class TestPointwiseProperties:
    @given(
        b1=st.integers(10, 30),
        delta=st.integers(0, 4),
        ramp=st.floats(1e5, 1e7),
        peak=st.floats(0.5, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_bytes(self, b1, delta, ramp, peak):
        params = CostParams(ramp_bytes=ramp, peak_fraction=peak)
        t1 = pointwise_time(2**b1, params=params)
        t2 = pointwise_time(2 ** (b1 + delta), params=params)
        assert t2 >= t1

    @given(bytes_=st.integers(2**10, 2**32))
    @settings(max_examples=30, deadline=None)
    def test_never_beats_hbm_roofline(self, bytes_):
        from repro.cluster import TESLA_V100

        t = pointwise_time(bytes_, include_launch=False)
        assert t >= bytes_ / TESLA_V100.hbm_bandwidth

    @given(
        bytes_=st.integers(2**10, 2**30),
        setup=st.floats(0, 1e-4),
    )
    @settings(max_examples=30, deadline=None)
    def test_setup_is_additive(self, bytes_, setup):
        base = pointwise_time(bytes_, params=CostParams())
        with_setup = pointwise_time(
            bytes_, params=CostParams(setup=setup)
        )
        assert with_setup == pytest.approx(base + setup, rel=1e-9)


class TestOverlapProperties:
    @given(batch=st.sampled_from([4, 8, 16, 32]))
    @settings(max_examples=8, deadline=None)
    def test_overlap_bounded_by_components_and_sum(self, batch):
        from repro.core import (
            FP16, RANK, AllReduce, Execute, MatMul, Sliced, Tensor, world,
        )
        from repro.core.transforms import Schedule
        from repro.perf import ProgramCostModel

        def build():
            W = world(16)
            a = Tensor(
                FP16, (batch * 1024, 768 * 16), Sliced(1), W, RANK, name="a"
            )
            w = Tensor(FP16, (768 * 16, 3072), Sliced(0), W, RANK, name="w")
            mm = MatMul(a, w, name="mm")
            ar = AllReduce("+", mm, name="ar")
            return Execute("p", [a, w], [ar]), mm, ar

        cluster = Cluster(1)
        prog, mm, ar = build()
        pcm = ProgramCostModel(cluster)
        parts = pcm.kernel_breakdown(prog)
        prog2, mm2, ar2 = build()
        sched = Schedule(prog2)
        sched.overlap(mm2, ar2)
        t = ProgramCostModel(cluster).time(sched)
        assert max(parts.values()) <= t <= sum(parts.values()) * 1.05
