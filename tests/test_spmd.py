"""The real-process SPMD backend against the lowered-interpreter oracle.

Differential harness: ``Executor.run_spmd`` — one OS process per rank,
shared-memory collectives — must be *bit-identical* (``np.array_equal``
on outputs and tensor states) to ``Executor.run_lowered`` across every
workload's original / named / autotuned schedules at real rank counts
(4 and 8). Plus the exception-safety regression: a kernel failing on
one rank must tear the whole run down without leaking shared-memory
segments or deadlocking peers.
"""

import os
import sys

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import FP32
from repro.core import Replicated as Replicated_
from repro.core.autotuner import Autotuner
from repro.core.codegen import CodeGenerator, GeneratedSpmdProgram
from repro.core.tensor import Tensor
from repro.core.transforms import Schedule
from repro.errors import CodegenError, ExecutionError
from repro.runtime import Executor
from repro.runtime.spmd import build_layout, launch
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.moe import MoEWorkload
from repro.workloads.pipeline import PipelineWorkload


@pytest.fixture
def rng():
    return np.random.RandomState(0x59D0)


def optimizer_inputs(rng, n=4, N=64):
    return dict(
        g=rng.randn(n, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )


def attention_inputs(rng, hidden=16, batch=4, seq=8):
    return {
        "w": rng.randn(hidden, hidden),
        "b": rng.randn(hidden),
        "in": rng.randn(batch, seq, hidden),
        "r": rng.randn(batch, seq, hidden),
    }


def assert_spmd_parity(sched, inputs, **spmd_kwargs):
    """run_spmd ≡ run_lowered, bit-for-bit, outputs and states."""
    program = sched.program if isinstance(sched, Schedule) else sched
    ex = Executor()
    low = ex.run_lowered(sched, inputs, allow_downcast=True)
    spmd = ex.run_spmd(sched, inputs, allow_downcast=True, **spmd_kwargs)
    for o in program.outputs:
        np.testing.assert_array_equal(
            spmd.output(o.name), low.output(o.name), err_msg=o.name
        )
    for t in program.inputs:
        if isinstance(t, Tensor):
            np.testing.assert_array_equal(
                spmd.tensor_state(t.name),
                low.tensor_state(t.name),
                err_msg=f"state {t.name}",
            )


class TestSpmdParity:
    """Every workload × original/named schedules, at ≥ 4 real ranks."""

    def test_adam_all_schedules(self, rng):
        wl = AdamWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        assert_spmd_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_spmd_parity(sched, inputs)

    def test_lamb_all_schedules(self, rng):
        wl = LambWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        assert_spmd_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_spmd_parity(sched, inputs)

    def test_attention_all_schedules(self, rng):
        # includes CoCoNet: the ring GEMM→fused-collective chunk loop
        # executes with a real producer stream thread per rank
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=6)
        inputs = attention_inputs(rng)
        assert_spmd_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_spmd_parity(sched, inputs)

    def test_moe_all_schedules(self, rng):
        wl = MoEWorkload.build(3, 6, 8, world_size=4, dtype=FP32)
        inputs = {
            "x": rng.randn(4, 4, 3, 6),
            "w1": rng.randn(4, 6, 8),
            "w2": rng.randn(4, 8, 6),
        }
        assert_spmd_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_spmd_parity(sched, inputs)
        assert_spmd_parity(wl.schedule_hierarchical(node_size=2), inputs)

    def test_pipeline_all_schedules_at_8_ranks(self, rng):
        # 8 real processes, two stage groups, P2P sends between them
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32, dropout_seed=5
        )
        inputs = {
            "in": rng.randn(4, 2, 8, 16),
            "b": rng.randn(16),
            "r": rng.randn(2, 8, 16),
        }
        assert_spmd_parity(wl.program, inputs)
        for sched in wl.schedules().values():
            assert_spmd_parity(sched, inputs)

    def test_autotuned_schedules(self, rng):
        # the autotuner's winner plus a sample of enumerated candidates
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=6)
        result = Autotuner(Cluster(1)).tune(wl.program)
        inputs = attention_inputs(rng)
        assert_spmd_parity(result.best.schedule, inputs)
        others = [c for c in result.candidates if c is not result.best]
        for cand in others[:3]:
            assert_spmd_parity(cand.schedule, inputs)

    def test_wire_simulation_does_not_change_numerics(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=6)
        assert_spmd_parity(
            wl.schedule_coconet(), attention_inputs(rng),
            wire_s_per_mb=0.5,
        )

    def test_ring_overlap_with_alltoall_consumer(self, rng):
        # regression: overlap(mm, a2a) lowers to a ring loop whose
        # consumer is NOT a reduction — the orchestrator must fall back
        # to whole-buffer publication instead of opening a chunk token
        # the AllToAll's pair-wise exchange would leave dangling
        # (which deadlocked the site's next sequence number)
        from repro.core import (
            RANK, AllToAll, Execute, Local, MatMul, world,
        )
        from repro.core.tensor import Tensor as T

        W = world(4)
        x = T(FP32, (8, 16), Local, W, RANK, name="x")
        w = T(FP32, (16, 16), Replicated_, W, name="w")
        mm = MatMul(x, w, name="mm")
        a2a = AllToAll(mm, dim=0, name="a2a")
        prog = Execute("mm_a2a", [x, w], [a2a])
        sched = Schedule(prog)
        sched.overlap(mm, a2a)
        loops = sched.lowered().chunk_loops()
        assert loops and loops[0].ring
        inputs = {"x": rng.randn(4, 8, 16), "w": rng.randn(16, 16)}
        assert_spmd_parity(sched, inputs, timeout=60.0)


class TestSpmdInterface:
    def test_nranks_must_match_program_world(self, rng):
        wl = AdamWorkload.build(64, 4)
        with pytest.raises(ExecutionError, match="built for 4 ranks"):
            Executor().run_spmd(
                wl.program, optimizer_inputs(rng), nranks=8,
                allow_downcast=True,
            )

    def test_generator_rejects_unknown_target(self):
        with pytest.raises(CodegenError, match="target"):
            CodeGenerator(target="cuda")

    def test_generated_spmd_program_metadata(self):
        wl = AdamWorkload.build(64, 4)
        gen = CodeGenerator(target="spmd").generate(
            wl.schedule_fused()
        )
        assert isinstance(gen, GeneratedSpmdProgram)
        assert "run_rank(comm, inputs)" in gen.source
        assert gen.loc() > 0
        assert gen.kernel_sources  # one entry per kernel
        for name in gen.kernel_sources:
            assert gen.kernel_loc(name) > 0

    def test_layout_enumerates_groups_and_p2p_pairs(self):
        wl = PipelineWorkload.build(
            2, 8, 16, world_size=8, num_groups=2, dtype=FP32
        )
        layout = build_layout(wl.program)
        keys = set(layout.sites)
        assert any(k.startswith("g") for k in keys)
        # one p2p site per same-local-rank pair between the stage groups
        assert {f"p{r}>{r + 4}" for r in range(4)} <= keys

    def test_missing_and_unknown_inputs_rejected(self, rng):
        wl = AdamWorkload.build(64, 4)
        inputs = optimizer_inputs(rng)
        del inputs["v"]
        with pytest.raises(ExecutionError, match="missing input 'v'"):
            Executor().run_spmd(wl.program, inputs, allow_downcast=True)
        inputs = optimizer_inputs(rng)
        inputs["bogus"] = np.zeros(3)
        with pytest.raises(ExecutionError, match="unknown inputs"):
            Executor().run_spmd(wl.program, inputs, allow_downcast=True)


def _shm_spmd_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("spmd_")]


class TestSpmdTeardown:
    """A rank failing mid-collective must not leak segments or hang."""

    @pytest.mark.skipif(
        sys.platform != "linux", reason="/dev/shm inspection is Linux-only"
    )
    def test_failing_kernel_on_rank_1_tears_down_cleanly(self, rng):
        wl = AdamWorkload.build(64, 4)
        gen = CodeGenerator(target="spmd").generate(wl.program)
        # inject a fault: rank 1 dies inside the collective kernel,
        # while ranks 0/2/3 are already blocked in the rendezvous
        source = gen.source.replace(
            '"""collective kernel: avg"""',
            '"""collective kernel: avg"""\n'
            "    if comm.rank == 1:\n"
            "        raise RuntimeError('injected kernel fault')",
            1,
        )
        assert "injected kernel fault" in source
        before = set(_shm_spmd_segments())
        with pytest.raises(ExecutionError, match="rank 1") as err:
            launch(
                source, gen.program, optimizer_inputs(rng),
                allow_downcast=True, timeout=30.0,
            )
        assert "injected kernel fault" in str(err.value)
        # every shared-memory segment created by the run was unlinked
        assert set(_shm_spmd_segments()) == before

    def test_successful_run_leaves_no_segments(self, rng):
        wl = AdamWorkload.build(64, 4)
        before = set(_shm_spmd_segments())
        Executor().run_spmd(
            wl.program, optimizer_inputs(rng), allow_downcast=True
        )
        assert set(_shm_spmd_segments()) == before
