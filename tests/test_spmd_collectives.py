"""Property tests: SpmdCommunicator collectives ≡ vectorized collectives.

Every collective of the shared-memory communicator must be bit-identical
(``np.array_equal``) to its ``repro.runtime.collectives`` vectorized
counterpart — across fp32/fp16 payloads and real rank counts {2, 4, 8},
including every divisor node size of the hierarchical AllToAll (uneven
grids like 8 = 2×4). A persistent :class:`CollectivePool` of worker
processes executes thousands of real rendezvous without paying a
process spawn per example.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import world
from repro.runtime import collectives
from repro.runtime.spmd import CollectivePool

RANK_COUNTS = (2, 4, 8)
DTYPES = (np.float32, np.float16)

_pools = {}


def pool(n: int) -> CollectivePool:
    if n not in _pools:
        _pools[n] = CollectivePool(n, slot_bytes=1 << 18, timeout=60.0)
    return _pools[n]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    while _pools:
        _pools.popitem()[1].close()


def _stacked(seed: int, n: int, shape, dtype) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return (rng.randn(n, *shape) * 4).astype(dtype)


def _assert_rows_equal(rows, stacked_ref):
    for i, row in enumerate(rows):
        np.testing.assert_array_equal(row, np.asarray(stacked_ref[i]))


class TestReductionCollectives:
    @given(
        n=st.sampled_from(RANK_COUNTS),
        per=st.integers(1, 3),
        dtype=st.sampled_from(DTYPES),
        op=st.sampled_from(["+", "*", "max", "min"]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_allreduce(self, n, per, dtype, op, seed):
        g = world(n)
        x = _stacked(seed, n, (n * per,), dtype)
        ref = collectives.allreduce_vectorized(x, g, op, dtype)
        rows = pool(n).call(
            "allreduce", [(x[i], g, op, dtype) for i in range(n)]
        )
        _assert_rows_equal(rows, ref)

    @given(
        n=st.sampled_from(RANK_COUNTS),
        per=st.integers(1, 2),
        dim=st.integers(0, 1),
        dtype=st.sampled_from(DTYPES),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_reducescatter(self, n, per, dim, dtype, seed):
        g = world(n)
        x = _stacked(seed, n, (n * per, n * per), dtype)
        ref = collectives.reducescatter_vectorized(
            x, g, "+", dim, dtype, context="rs"
        )
        rows = pool(n).call(
            "reducescatter",
            [(x[i], g, "+", dim, dtype) for i in range(n)],
            kwargs={"context": "rs"},
        )
        _assert_rows_equal(rows, ref)

    @given(
        n=st.sampled_from(RANK_COUNTS),
        root=st.integers(0, 7),
        dtype=st.sampled_from(DTYPES),
        op=st.sampled_from(["+", "max"]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_reduce_keeps_non_root_inputs(self, n, root, dtype, op, seed):
        root = root % n
        g = world(n)
        x = _stacked(seed, n, (2 * n,), dtype)
        ref = collectives.reduce_vectorized(x, g, op, root, dtype)
        rows = pool(n).call(
            "reduce", [(x[i], g, op, root, dtype) for i in range(n)]
        )
        _assert_rows_equal(rows, ref)


class TestDataMovementCollectives:
    @given(
        n=st.sampled_from(RANK_COUNTS),
        per=st.integers(1, 2),
        dim=st.integers(0, 1),
        dtype=st.sampled_from(DTYPES),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_allgather(self, n, per, dim, dtype, seed):
        g = world(n)
        x = _stacked(seed, n, (n * per, per), dtype)
        ref = collectives.allgather_vectorized(x, g, dim)
        rows = pool(n).call(
            "allgather", [(x[i], g, dim) for i in range(n)]
        )
        _assert_rows_equal(rows, ref)

    @given(
        n=st.sampled_from(RANK_COUNTS),
        per=st.integers(1, 2),
        dim=st.integers(0, 1),
        dtype=st.sampled_from(DTYPES),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_alltoall(self, n, per, dim, dtype, seed):
        g = world(n)
        x = _stacked(seed, n, (n * per, n * per), dtype)
        ref = collectives.alltoall_vectorized(x, g, dim, context="a2a")
        rows = pool(n).call(
            "alltoall",
            [(x[i], g, dim) for i in range(n)],
            kwargs={"context": "a2a"},
        )
        _assert_rows_equal(rows, ref)

    @given(
        n=st.sampled_from(RANK_COUNTS),
        root=st.integers(0, 7),
        dtype=st.sampled_from(DTYPES),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_broadcast(self, n, root, dtype, seed):
        root = root % n
        g = world(n)
        x = _stacked(seed, n, (3,), dtype)
        ref = collectives.broadcast_vectorized(x, g, root)
        rows = pool(n).call(
            "broadcast", [(x[i], g, root) for i in range(n)]
        )
        _assert_rows_equal(rows, ref)


class TestHierarchicalAllToAll:
    """intra/inter phases for *every* divisor node size of {2,4,8} —
    uneven grids (8 = 2×4) included — and their composition to flat."""

    @pytest.mark.parametrize("n", RANK_COUNTS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_every_divisor(self, n, dtype):
        g = world(n)
        x = _stacked(1234 + n, n, (2 * n, 3), dtype)
        flat = collectives.alltoall_vectorized(x, g, 0)
        for m in range(1, n + 1):
            if n % m != 0:
                continue
            intra_ref = collectives.alltoall_intra_vectorized(x, g, 0, m)
            intra = pool(n).call(
                "alltoall_intra", [(x[i], g, 0, m) for i in range(n)]
            )
            _assert_rows_equal(intra, intra_ref)
            inter = pool(n).call(
                "alltoall_inter",
                [(np.asarray(intra_ref[i]), g, 0, m) for i in range(n)],
            )
            _assert_rows_equal(inter, flat)


class TestScalarExchange:
    @given(
        n=st.sampled_from(RANK_COUNTS),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_exchange_scalars_rank_order(self, n, seed):
        g = world(n)
        rng = np.random.RandomState(seed)
        vals = rng.randn(n)
        rows = pool(n).call(
            "exchange_scalars", [(vals[i], g) for i in range(n)]
        )
        for per_rank in rows:
            assert [float(p) for p in per_rank] == [float(v) for v in vals]
