"""Tests for the reference collectives, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.process_group import ProcessGroup, world
from repro.runtime import collectives


def _values(rng, n, shape):
    return {r: rng.randn(*shape).astype(np.float32) for r in range(n)}


@pytest.fixture
def rng():
    return np.random.RandomState(7)


class TestAllReduce:
    def test_sum(self, rng):
        vals = _values(rng, 4, (8,))
        out = collectives.allreduce(vals, world(4), "+", np.float32)
        expected = sum(vals[r].astype(np.float64) for r in range(4))
        for r in range(4):
            np.testing.assert_allclose(out[r], expected.astype(np.float32))

    def test_max(self, rng):
        vals = _values(rng, 4, (8,))
        out = collectives.allreduce(vals, world(4), "max", np.float32)
        expected = np.max(np.stack(list(vals.values())), axis=0)
        np.testing.assert_array_equal(out[0], expected)

    def test_all_ranks_identical(self, rng):
        vals = _values(rng, 4, (4, 4))
        out = collectives.allreduce(vals, world(4), "+", np.float32)
        for r in range(1, 4):
            np.testing.assert_array_equal(out[0], out[r])

    def test_results_are_copies(self, rng):
        vals = _values(rng, 2, (4,))
        out = collectives.allreduce(vals, world(2), "+", np.float32)
        out[0][0] = 999
        assert out[1][0] != 999

    def test_unknown_op(self, rng):
        vals = _values(rng, 2, (4,))
        with pytest.raises(ValueError):
            collectives.allreduce(vals, world(2), "avg", np.float32)


class TestReduceScatterAllGather:
    def test_rs_slices(self, rng):
        vals = _values(rng, 4, (8,))
        out = collectives.reducescatter(vals, world(4), "+", 0, np.float32)
        total = sum(vals[r].astype(np.float64) for r in range(4))
        for i in range(4):
            np.testing.assert_allclose(
                out[i], total[i * 2 : (i + 1) * 2].astype(np.float32)
            )

    def test_rs_then_ag_equals_allreduce(self, rng):
        # the foundation of the split transformation's validity (§3.1)
        vals = _values(rng, 4, (8, 4))
        ar = collectives.allreduce(vals, world(4), "+", np.float32)
        rs = collectives.reducescatter(vals, world(4), "+", 0, np.float32)
        ag = collectives.allgather(rs, world(4), 0)
        for r in range(4):
            np.testing.assert_array_equal(ar[r], ag[r])

    def test_rs_along_dim1(self, rng):
        vals = _values(rng, 2, (4, 8))
        out = collectives.reducescatter(vals, world(2), "+", 1, np.float32)
        assert out[0].shape == (4, 4)

    def test_ag_concatenates_in_rank_order(self, rng):
        slices = {r: np.full((2,), r, dtype=np.float32) for r in range(4)}
        out = collectives.allgather(slices, world(4), 0)
        np.testing.assert_array_equal(
            out[2], np.repeat(np.arange(4, dtype=np.float32), 2)
        )

    def test_subgroup_collective(self, rng):
        g = ProcessGroup(4, 4, 8)
        vals = {r: rng.randn(4).astype(np.float32) for r in g}
        out = collectives.allreduce(vals, g, "+", np.float32)
        assert set(out) == set(g.ranks)


class TestReduceBroadcast:
    def test_reduce_root_only(self, rng):
        vals = _values(rng, 4, (4,))
        out = collectives.reduce(vals, world(4), "+", 1, np.float32)
        total = sum(vals[r].astype(np.float64) for r in range(4))
        np.testing.assert_allclose(out[1], total.astype(np.float32))

    def test_reduce_non_root_keeps_input(self, rng):
        # NCCL leaves non-root receive buffers unmodified; zero-filling
        # them could launder a schedule that wrongly reads a non-root
        # buffer into an all-zero "correct-looking" result.
        vals = _values(rng, 4, (4,))
        out = collectives.reduce(vals, world(4), "+", 1, np.float32)
        for r in (0, 2, 3):
            np.testing.assert_array_equal(out[r], vals[r])

    def test_broadcast_from_root(self, rng):
        vals = _values(rng, 4, (4,))
        out = collectives.broadcast(vals, world(4), 2)
        for r in range(4):
            np.testing.assert_array_equal(out[r], vals[2])

    def test_reduce_then_broadcast_equals_allreduce(self, rng):
        # validity of the ARSplitReduceBroadcast policy
        vals = _values(rng, 4, (8,))
        ar = collectives.allreduce(vals, world(4), "+", np.float32)
        red = collectives.reduce(vals, world(4), "+", 0, np.float32)
        bc = collectives.broadcast(red, world(4), 0)
        np.testing.assert_array_equal(ar[3], bc[3])


class TestProperties:
    @given(
        n=st.integers(2, 8),
        per=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_rs_ag_equals_ar_property(self, n, per, seed):
        rng = np.random.RandomState(seed)
        shape = (n * per,)
        vals = {r: rng.randn(*shape).astype(np.float32) for r in range(n)}
        ar = collectives.allreduce(vals, world(n), "+", np.float32)
        rs = collectives.reducescatter(vals, world(n), "+", 0, np.float32)
        ag = collectives.allgather(rs, world(n), 0)
        np.testing.assert_array_equal(ar[0], ag[0])

    @given(n=st.integers(1, 8), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_invariant_under_rank_permutation(self, n, seed):
        rng = np.random.RandomState(seed)
        vals = {r: rng.randn(6).astype(np.float32) for r in range(n)}
        out1 = collectives.allreduce(vals, world(n), "+", np.float32)
        perm = {r: vals[(r + 1) % n] for r in range(n)}
        out2 = collectives.allreduce(perm, world(n), "+", np.float32)
        np.testing.assert_allclose(out1[0], out2[0], rtol=1e-6)

    @given(
        n=st.integers(2, 6),
        rows=st.integers(1, 4),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_gather_scatter_roundtrip(self, n, rows, seed):
        rng = np.random.RandomState(seed)
        full = rng.randn(n * rows, 3).astype(np.float32)
        slices = {
            r: full[r * rows : (r + 1) * rows] for r in range(n)
        }
        out = collectives.allgather(slices, world(n), 0)
        np.testing.assert_array_equal(out[n - 1], full)
