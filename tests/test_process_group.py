"""Tests for RANK / GROUP / WORLD semantics."""

import pytest

from repro.core.process_group import (
    RANK,
    ProcessGroup,
    _SymbolicRank,
    split_world,
    world,
)
from repro.errors import GroupError


class TestWorld:
    def test_world_covers_all_ranks(self):
        w = world(16)
        assert list(w.ranks) == list(range(16))
        assert len(w) == 16

    def test_world_repr(self):
        assert repr(world(8)) == "WORLD(8)"

    def test_world_of_zero_raises(self):
        with pytest.raises(GroupError):
            world(0)


class TestSplitWorld:
    def test_equal_split(self):
        groups = split_world(32, 2)
        assert len(groups) == 2
        assert list(groups[0].ranks) == list(range(16))
        assert list(groups[1].ranks) == list(range(16, 32))

    def test_uneven_split_raises(self):
        with pytest.raises(GroupError, match="equal groups"):
            split_world(10, 3)

    def test_group_index(self):
        groups = split_world(32, 4)
        assert [g.index for g in groups] == [0, 1, 2, 3]

    def test_single_group_is_world_sized(self):
        (g,) = split_world(8, 1)
        assert g.size == 8


class TestRankTranslation:
    def test_local_rank(self):
        g = ProcessGroup(16, 16, 32)
        assert g.local_rank(16) == 0
        assert g.local_rank(31) == 15

    def test_local_rank_outside_raises(self):
        g = ProcessGroup(16, 16, 32)
        with pytest.raises(GroupError):
            g.local_rank(5)

    def test_global_rank(self):
        g = ProcessGroup(16, 16, 32)
        assert g.global_rank(0) == 16
        assert g.global_rank(15) == 31

    def test_global_rank_out_of_range(self):
        g = ProcessGroup(0, 4, 8)
        with pytest.raises(GroupError):
            g.global_rank(4)

    def test_contains(self):
        g = ProcessGroup(4, 4, 12)
        assert 4 in g and 7 in g
        assert 3 not in g and 8 not in g


class TestNextGroup:
    def test_next_group_pipeline_addressing(self):
        # GroupRank(GROUP + 1, RANK) addressing of Figure 8a
        g0, g1 = split_world(32, 2)
        assert g0.next_group() == g1

    def test_next_group_offset(self):
        groups = split_world(64, 4)
        assert groups[0].next_group(3) == groups[3]

    def test_next_group_past_world_raises(self):
        g0, g1 = split_world(32, 2)
        with pytest.raises(GroupError):
            g1.next_group()


class TestGroupValidation:
    def test_exceeding_world_raises(self):
        with pytest.raises(GroupError):
            ProcessGroup(8, 16, 16)

    def test_negative_start_raises(self):
        with pytest.raises(GroupError):
            ProcessGroup(-1, 4, 8)


class TestSymbolicRank:
    def test_singleton(self):
        assert _SymbolicRank() is RANK

    def test_repr(self):
        assert repr(RANK) == "RANK"
