"""Tests for the workload builders (programs match the paper's figures)."""

import pytest

from repro.core import FP16, ops
from repro.workloads import (
    AdamWorkload,
    AttentionWorkload,
    LambWorkload,
    PipelineWorkload,
)
from repro.workloads.models import BERT_336M, GPT3_175B


class TestAdamProgram:
    def test_figure_6a_structure(self):
        wl = AdamWorkload.build(1024, 16)
        text = wl.program.pretty()
        assert 'AllReduce("+", g)' in text
        assert "Update(m" in text and "Update(v" in text and "Update(p" in text
        assert "Sqrt" in text

    def test_mixed_precision_defaults(self):
        wl = AdamWorkload.build(1024, 16)
        assert wl.grads.dtype is FP16
        assert wl.params.dtype is FP16  # fp16 params, fp32 moments
        assert wl.momentum.dtype.name == "FP32"

    def test_inputs_match_figure(self):
        wl = AdamWorkload.build(1024, 16)
        names = [t.name for t in wl.program.inputs]
        assert names == ["g", "p", "m", "v", "lr", "t"]

    def test_gradient_is_local(self):
        wl = AdamWorkload.build(1024, 16)
        assert wl.grads.layout.is_local

    def test_fused_schedule_is_single_collective_kernel(self):
        from repro.core.transforms import KernelKind

        wl = AdamWorkload.build(1024, 16)
        plan = wl.schedule_fused().plan()
        kinds = [k.kind for k in plan.kernels]
        assert kinds.count(KernelKind.FUSED_COLLECTIVE) == 1
        assert KernelKind.COLLECTIVE not in kinds

    def test_schedules_dictionary(self):
        wl = AdamWorkload.build(1024, 16)
        assert set(wl.schedules()) == {
            "AR-Adam", "RS-Adam-AG", "fuse(RS-Adam-AG)"
        }


class TestLambProgram:
    def test_has_trust_ratio_norms(self):
        wl = LambWorkload.build(1024, 16)
        norms = [
            e for e in wl.program.operations if isinstance(e, ops.Norm)
        ]
        assert len(norms) == 2

    def test_distributed_lamb_norms_cross_ranks(self):
        # the capability ZeRO lacks: norms over sliced state
        wl = LambWorkload.build(1024, 16)
        sched = wl.schedule_fused()
        norms = [
            e for e in sched.program.operations if isinstance(e, ops.Norm)
        ]
        assert norms and all(n.crosses_ranks for n in norms)


class TestAttentionProgram:
    def test_figure_3_shapes(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        assert wl.program.find("w").shape == (3072, 3072)
        assert wl.program.find("in").shape == (8, 1024, 3072)
        assert wl.matmul.layout.is_local

    def test_mlp_expansion(self):
        wl = AttentionWorkload.build(8, 1024, 3072, 16, expansion=4)
        assert wl.program.find("w").shape == (4 * 3072, 3072)
        assert wl.program.find("in").shape == (8, 1024, 4 * 3072)

    def test_four_schedules(self):
        wl = AttentionWorkload.build(4, 8, 16, 4)
        assert set(wl.schedules()) == {
            "MegatronLM", "MM-AR-C", "GShard-Eq", "CoCoNet"
        }

    def test_megatron_unfused_kernel_count(self):
        wl = AttentionWorkload.build(4, 8, 16, 4)
        plan = wl.schedule_megatron().plan()
        # MatMul + AR + 3 pointwise = 5 kernels
        assert len(plan.kernels) == 5

    def test_coconet_overlaps_matmul_with_fused_collective(self):
        wl = AttentionWorkload.build(4, 8, 16, 4)
        plan = wl.schedule_coconet().plan()
        assert len(plan.overlap_groups) == 1
        assert any("layer" in g for g in plan.overlap_groups)


class TestPipelineProgram:
    def test_figure_8a_structure(self):
        wl = PipelineWorkload.build(2, 8, 16, world_size=8, num_groups=2)
        text = wl.program.pretty()
        assert "Send(" in text and "GroupRank(GROUP+1" in text

    def test_send_crosses_groups(self):
        wl = PipelineWorkload.build(2, 8, 16, world_size=8, num_groups=2)
        assert wl.send.group.start == 4
        assert wl.send.inputs[0].group.start == 0

    def test_megatron_sends_replicated_redundant_data(self):
        # "each GPU sends redundant data" (Figure 7a)
        wl = PipelineWorkload.build(2, 8, 16, world_size=8, num_groups=2)
        assert wl.send.layout.is_replicated

    def test_coconet_overlap_covers_three_comm_stages(self):
        wl = PipelineWorkload.build(2, 8, 16, world_size=8, num_groups=2)
        plan = wl.schedule_coconet().plan()
        assert len(plan.overlap_groups) == 1
        assert len(plan.overlap_groups[0]) == 3  # RS, fused C-P2P, AG


class TestModelConfigs:
    def test_flops_per_sample(self):
        assert BERT_336M.flops_per_sample() == pytest.approx(
            6 * 336e6 * 512, rel=0.01
        )

    def test_inference_flops_smaller(self):
        assert (
            GPT3_175B.inference_flops_per_sample()
            < GPT3_175B.flops_per_sample()
        )

    def test_param_bytes_fp16(self):
        assert BERT_336M.param_bytes_fp16 == 2 * 336_000_000
