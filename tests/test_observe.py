"""The unified tracing & metrics layer (:mod:`repro.observe`).

Four fronts:

* the typed event schema and :class:`Tracer` recording primitives,
* Perfetto ``trace_event`` export — including a hypothesis round-trip
  property (arbitrary typed events export to a schema-valid document
  that survives JSON serialization) and span-nesting checks against the
  lowering's dependency edges on a real measured run,
* the per-rank file-backed trace rings: merge at 4 real SPMD ranks,
  wrap-around/drop accounting, and the faulty-teardown harvest (a rank
  dying mid-collective leaves a mergeable timeline and structured error
  context, with no shared-memory leak),
* predicted-vs-measured alignment and the autotuner/cost-model metrics
  flowing through the same registry.
"""

import json
import os
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import FP32
from repro.core.autotuner import Autotuner
from repro.core.codegen import CodeGenerator
from repro.core.transforms import Schedule
from repro.observe import (
    CounterEvent,
    InstantEvent,
    MetricsRegistry,
    SpanEvent,
    Tracer,
    compare_timelines,
    describe_events,
    export,
    merge_rank_traces,
    validate,
    write_trace,
)
from repro.observe.ring import KIND_KERNEL, KIND_PUBLISH, TraceRing
from repro.perf.engine import Task, Timeline
from repro.runtime import Executor
from repro.runtime.spmd import SpmdWorkerError, launch
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload


@pytest.fixture
def rng():
    return np.random.RandomState(0x59D0)


def optimizer_inputs(rng, n=4, N=64):
    return dict(
        g=rng.randn(n, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )


def attention_inputs(rng, hidden=16, batch=4, seq=8):
    return {
        "w": rng.randn(hidden, hidden),
        "b": rng.randn(hidden),
        "in": rng.randn(batch, seq, hidden),
        "r": rng.randn(batch, seq, hidden),
    }


class TestTracer:
    def test_span_records_interval_on_track(self):
        tr = Tracer()
        with tr.span("work", cat="launch", tid="s0", step=3):
            pass
        (ev,) = tr.events
        assert isinstance(ev, SpanEvent)
        assert (ev.name, ev.cat, ev.pid, ev.tid) == (
            "work", "launch", "main", "s0"
        )
        assert ev.dur >= 0 and ev.end == ev.ts + ev.dur
        assert ev.args == {"step": 3}

    def test_span_records_even_when_body_raises(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert [e.name for e in tr.events] == ["boom"]

    def test_complete_instant_counter_and_filters(self):
        tr = Tracer(pid="rank0")
        tr.complete("k", ts=1.0, dur=0.5, cat="kernel", tid="kernels")
        tr.instant("pack", cat="pack", args={"buckets": 2})
        tr.counter("bytes_published", 128.0)
        assert [type(e) for e in tr.events] == [
            SpanEvent, InstantEvent, CounterEvent
        ]
        assert [e.name for e in tr.spans()] == ["k"]
        assert tr.spans(cat="kernel")[0].pid == "rank0"
        assert tr.spans(cat="nope") == []

    def test_describe_events_lists_spans_in_start_order(self):
        tr = Tracer()
        tr.complete("later", ts=2.0, dur=1.0, tid="s1")
        tr.complete("earlier", ts=0.5, dur=0.25, tid="s0")
        text = describe_events(tr.events)
        assert text.index("earlier") < text.index("later")
        assert "[main/s0]" in text
        assert describe_events(tr.events, limit=1).count("\n") == 0


class TestMetricsRegistry:
    def test_inc_set_get_snapshot(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 2)
        m.set("b", 0.5)
        assert m.get("a") == 3
        assert "a" in m and "zzz" not in m
        snap = m.snapshot()
        assert snap == {"a": 3, "b": 0.5}
        snap["a"] = 99  # snapshot is a copy
        assert m.get("a") == 3

    def test_merge_and_describe(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("shared", 1)
        b.inc("shared", 2)
        b.set("only_b", 7)
        a.merge(b)
        assert a.get("shared") == 3 and a.get("only_b") == 7
        assert "shared" in a.describe()


# -- Perfetto export -----------------------------------------------------

_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1, max_size=12,
)
_times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
_events = st.one_of(
    st.builds(
        SpanEvent, name=_names, cat=_names, ts=_times, dur=_times,
        pid=_names, tid=_names,
        args=st.dictionaries(_names, st.integers(), max_size=2),
    ),
    st.builds(
        InstantEvent, name=_names, cat=_names, ts=_times,
        pid=_names, tid=_names,
    ),
    st.builds(
        CounterEvent, name=_names, ts=_times,
        value=st.floats(allow_nan=False, allow_infinity=False),
        pid=_names, tid=_names,
    ),
)


class TestPerfettoExport:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_events, max_size=20))
    def test_export_roundtrip_is_schema_valid(self, events):
        doc = json.loads(json.dumps(export(events)))
        assert validate(doc) == []
        timed = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i", "C")]
        # one trace_event per typed event, names preserved
        assert [e["name"] for e in timed] == [e.name for e in events]

    def test_validate_flags_broken_documents(self):
        assert validate({}) == ["traceEvents missing or not a list"]
        doc = export([SpanEvent("k", "kernel", 0.0, 1.0, "main", "s0")])
        doc["traceEvents"][-1]["dur"] = -1.0
        assert any("bad dur" in p for p in validate(doc))
        doc = export([SpanEvent("k", "kernel", 0.0, 1.0, "main", "s0")])
        doc["traceEvents"] = [
            e for e in doc["traceEvents"] if e["ph"] != "M"
        ]
        assert any("metadata" in p for p in validate(doc))

    def test_write_trace_produces_loadable_file(self, tmp_path, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        tracer = Tracer()
        Executor().run_lowered(
            wl.schedule_coconet(), attention_inputs(rng),
            allow_downcast=True, tracer=tracer,
        )
        path = tmp_path / "run.trace.json"
        write_trace(tracer.events, str(path))
        doc = json.loads(path.read_text())
        assert validate(doc) == []
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_launch_spans_respect_dependency_edges(self, rng):
        """Every dep edge carried in a launch span's args holds on the
        measured timeline: the dependency ends before the user starts."""
        wl = AdamWorkload.build(64, 4)
        tracer = Tracer()
        Executor().run_lowered(
            Schedule(wl.program), optimizer_inputs(rng),
            allow_downcast=True, tracer=tracer,
        )
        spans = tracer.spans()
        by_name = {
            e.name: e for e in spans
            if e.cat in ("launch", "whole", "chunkloop")
        }
        checked = 0
        for ev in spans:
            for dep in ev.args.get("deps", ()):
                if dep in by_name:
                    assert by_name[dep].end <= ev.ts + 1e-9, (
                        f"{dep} must finish before {ev.name} starts"
                    )
                    checked += 1
        assert checked > 0

    def test_chunk_spans_nest_inside_their_loop_envelope(self, rng):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
        sched = wl.schedule_coconet()
        tracer = Tracer()
        Executor().run_lowered(
            sched, attention_inputs(rng), allow_downcast=True,
            tracer=tracer,
        )
        spans = tracer.spans()
        (loop,) = sched.lowered().chunk_loops()
        envelope = next(
            e for e in spans if e.cat == "chunkloop" and e.name == loop.name
        )
        chunk_spans = tracer.spans(cat="chunk")
        assert len(chunk_spans) == loop.num_chunks
        for c in chunk_spans:
            assert envelope.ts <= c.ts and c.end <= envelope.end + 1e-9


# -- trace rings and SPMD merge ------------------------------------------

class TestTraceRing:
    def test_append_records_roundtrip(self, tmp_path):
        path = str(tmp_path / "rank0.ring")
        ring = TraceRing.create(path, capacity=8)
        ring.append(KIND_PUBLISH, ts=100, dur=5, nbytes=64, seq=2,
                    site="g0x4", name="avg")
        ring.close()
        reader = TraceRing(path)
        assert reader.count == 1 and reader.dropped == 0
        (rec,) = reader.records()
        assert int(rec["kind"]) == KIND_PUBLISH
        assert (int(rec["ts"]), int(rec["dur"]), int(rec["nbytes"]),
                int(rec["seq"])) == (100, 5, 64, 2)
        assert rec["site"] == b"g0x4" and rec["name"] == b"avg"
        reader.close()

    def test_wraparound_keeps_newest_and_counts_drops(self, tmp_path):
        ring = TraceRing.create(str(tmp_path / "rank0.ring"), capacity=4)
        for i in range(6):
            ring.append(KIND_KERNEL, ts=i, dur=1, seq=i)
        assert ring.count == 6 and ring.dropped == 2
        recs = ring.records()
        assert [int(r["seq"]) for r in recs] == [2, 3, 4, 5]
        ring.close()

    def test_attach_rejects_non_ring_file(self, tmp_path):
        path = tmp_path / "rank0.ring"
        path.write_bytes(b"\0" * 4096)
        with pytest.raises(ValueError, match="not a trace ring"):
            TraceRing(str(path))

    def test_merge_tags_unreadable_rings_and_rebases(self, tmp_path):
        ring = TraceRing.create(str(tmp_path / "rank0.ring"), capacity=8)
        ring.append(KIND_PUBLISH, ts=5_000_000_000, dur=1_000_000,
                    nbytes=32, seq=0, site="g0x4", name="avg")
        ring.close()
        (tmp_path / "rank1.ring").write_bytes(b"garbage")
        (tmp_path / "notes.txt").write_text("ignored")
        metrics = MetricsRegistry()
        events = merge_rank_traces(str(tmp_path), base=1.0, metrics=metrics)
        spans = [e for e in events if isinstance(e, SpanEvent)]
        (ev,) = spans
        # earliest record maps to the caller's base
        assert ev.ts == pytest.approx(1.0)
        assert ev.pid == "rank0" and ev.cat == "publish"
        assert ev.args["site"] == "g0x4" and ev.args["bytes"] == 32
        counters = [e for e in events if isinstance(e, CounterEvent)]
        assert counters and counters[0].name == "bytes_published"
        assert metrics.get("spmd.rank0.bytes_published") == 32
        # the unreadable ring is tagged, not silently skipped
        instants = [e for e in events if isinstance(e, InstantEvent)]
        assert any(
            e.name == "ring-corrupt" and e.pid == "rank1" for e in instants
        )
        assert metrics.get("spmd.rank1.ring_corrupt") == 1
        assert metrics.get("spmd.rank1.bytes_published") == 0


def _shm_spmd_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("spmd_")]


class TestSpmdTracing:
    """Per-rank timelines from real processes, merged by the parent."""

    def test_four_rank_run_merges_per_rank_timelines(self, rng):
        wl = AdamWorkload.build(64, 4)
        tracer = Tracer()
        Executor().run_spmd(
            wl.program, optimizer_inputs(rng), allow_downcast=True,
            tracer=tracer,
        )
        spans = tracer.spans()
        assert {e.pid for e in spans} >= {f"rank{r}" for r in range(4)}
        assert {e.cat for e in spans} >= {
            "kernel", "publish", "reduce", "wait"
        }
        # the fused allreduce publishes the same gradient bytes per rank
        snap = tracer.metrics.snapshot()
        published = [
            snap[f"spmd.rank{r}.bytes_published"] for r in range(4)
        ]
        assert len(set(published)) == 1 and published[0] > 0
        counters = [
            e for e in tracer.events if isinstance(e, CounterEvent)
        ]
        assert {e.pid for e in counters} == {f"rank{r}" for r in range(4)}
        assert validate(export(tracer.events)) == []

    @pytest.mark.skipif(
        sys.platform != "linux", reason="/dev/shm inspection is Linux-only"
    )
    def test_faulty_rank_teardown_still_harvests_trace(self, tmp_path, rng):
        """A rank dying mid-collective leaves its ring mergeable, a
        structured error context, and no shared-memory leak."""
        wl = AdamWorkload.build(64, 4)
        gen = CodeGenerator(target="spmd").generate(wl.program)
        source = gen.source.replace(
            '"""collective kernel: avg"""',
            '"""collective kernel: avg"""\n'
            "    if comm.rank == 1:\n"
            "        raise RuntimeError('injected kernel fault')",
            1,
        )
        assert "injected kernel fault" in source
        before = set(_shm_spmd_segments())
        with pytest.raises(SpmdWorkerError, match="rank 1") as err:
            launch(
                source, gen.program, optimizer_inputs(rng),
                allow_downcast=True, timeout=30.0,
                trace_dir=str(tmp_path),
            )
        assert err.value.context["rank"] == 1
        assert err.value.context["op"] == "avg"
        assert "op 'avg'" in str(err.value)
        assert set(_shm_spmd_segments()) == before

        events = merge_rank_traces(str(tmp_path))
        spans = [e for e in events if isinstance(e, SpanEvent)]
        assert {e.pid for e in spans} == {f"rank{r}" for r in range(4)}
        # the failing rank's kernel span was recorded on the way out
        rank1_kernels = [
            e.name for e in spans if e.pid == "rank1" and e.cat == "kernel"
        ]
        assert "avg" in rank1_kernels
        # the survivors' blocked waits are visible too
        assert any(
            e.cat == "wait" and e.pid != "rank1" for e in spans
        )


# -- predicted vs measured -----------------------------------------------

class TestCompare:
    def test_chunk_spans_fold_into_base_kernel(self):
        tl = Timeline(spans={"mm": (0.0, 1e-3), "ghost": (0.0, 1e-3)})
        events = [
            SpanEvent("mm#c0", "chunk", 0.0, 1e-3, "main", "s0"),
            SpanEvent("mm#c1", "chunk", 1e-3, 1e-3, "main", "s0"),
            SpanEvent("extra", "launch", 0.0, 1e-3, "main", "s0"),
            SpanEvent("ignored", "comm", 0.0, 1e-3, "main", "s0"),
        ]
        cmp = compare_timelines(tl, events)
        row = cmp.row("mm")
        assert row.spans == 2
        assert row.ratio == pytest.approx(2.0)
        assert row.log_error == pytest.approx(1.0)
        assert cmp.only_predicted == ["ghost"]
        assert cmp.only_measured == ["extra"]

    def test_zero_prediction_gives_inf_ratio(self):
        tl = Timeline(spans={"k": (0.0, 0.0)})
        cmp = compare_timelines(
            tl, [SpanEvent("k", "launch", 0.0, 1.0, "main", "s0")]
        )
        assert cmp.row("k").ratio == float("inf")
        assert "inf" in cmp.describe()

    def test_top_mispredictions_ranked_by_log_error(self):
        tl = Timeline(spans={
            "good": (0.0, 1e-3), "over": (0.0, 8e-3), "under": (0.0, 1e-3),
        })
        events = [
            SpanEvent("good", "launch", 0.0, 1e-3, "main", "s0"),
            SpanEvent("over", "launch", 0.0, 1e-3, "main", "s0"),
            SpanEvent("under", "launch", 0.0, 16e-3, "main", "s0"),
        ]
        cmp = compare_timelines(tl, events)
        # 16x underestimate beats 8x overestimate beats 1x
        assert [r.name for r in cmp.top_mispredictions(3)] == [
            "under", "over", "good"
        ]
        assert "misprediction" in cmp.describe()

    def test_timeline_to_events_speaks_the_event_schema(self):
        tasks = [
            Task("a", "gpu:0", 1e-3),
            Task("b", "nic:0", 2e-3, deps=("a",)),
        ]
        from repro.perf.engine import Engine

        tl = Engine().run(tasks)
        events = tl.to_events(tasks)
        assert [e.name for e in events] == ["a", "b"]
        assert all(e.cat == "predicted" for e in events)
        assert events[1].tid == "nic:0"
        assert events[1].args["deps"] == ["a"]
        assert validate(export(events)) == []

    def test_measured_run_aligns_with_cost_model(self, rng):
        from repro.perf.program_cost import ProgramCostModel

        wl = AdamWorkload.build(64, 4)
        sched = Schedule(wl.program)
        tracer = Tracer()
        Executor().run_lowered(
            sched, optimizer_inputs(rng), allow_downcast=True,
            tracer=tracer,
        )
        timeline, _ = ProgramCostModel(Cluster(1)).timeline(sched)
        cmp = compare_timelines(timeline, tracer.events)
        assert cmp.rows, "no ops aligned between DES and measured trace"
        assert all(r.measured > 0 and r.predicted > 0 for r in cmp.rows)


class TestTunerMetrics:
    def test_autotuner_counters_flow_through_registry(self):
        metrics = MetricsRegistry()
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32,
                                     dropout_seed=6)
        result = Autotuner(Cluster(1), metrics=metrics).tune(wl.program)
        assert result.metrics is metrics
        snap = metrics.snapshot()
        assert snap["tuner.candidates"] >= 1
        assert snap["tuner.candidates"] == len(result.candidates)
        assert snap.get("tuner.dedup_hits", 0) >= 0
        assert 0.0 <= snap["cost_model.memo_hit_rate"] <= 1.0

    def test_untracked_tune_has_no_registry(self):
        wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32,
                                     dropout_seed=6)
        result = Autotuner(Cluster(1)).tune(wl.program)
        assert result.metrics is None
