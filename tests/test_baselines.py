"""Tests for the baseline training strategies and Apex model (Table 4)."""

import pytest

from repro.baselines import (
    ALL_STRATEGIES,
    FUSED_ADAM,
    FUSED_LAMB,
    CoCoNetStrategy,
    NVBertStrategy,
    PyTorchDDPStrategy,
    ZeROStrategy,
)
from repro.cluster import Cluster
from repro.workloads.models import BERT_1_2B, BERT_336M, BERT_3_9B


@pytest.fixture
def cluster():
    return Cluster(16)


class TestApexModel:
    def test_lamb_touches_more_bytes_than_adam(self):
        assert FUSED_LAMB.bytes_per_param > FUSED_ADAM.bytes_per_param

    def test_kernel_time_scales(self):
        small = FUSED_ADAM.kernel_time(2**12)
        large = FUSED_ADAM.kernel_time(2**28)
        assert large > small * 100

    def test_setup_dominates_small(self):
        t = FUSED_ADAM.kernel_time(2**8)
        assert t >= FUSED_ADAM.setup_seconds


class TestIterationModel:
    def test_breakdown_sums(self, cluster):
        s = NVBertStrategy(FUSED_ADAM)
        it = s.iteration(BERT_336M, 32, cluster)
        assert it.total == pytest.approx(
            it.forward_backward + it.gradient_copies
            + it.communication + it.optimizer
        )

    def test_nv_bert_pays_copies(self, cluster):
        it = NVBertStrategy(FUSED_ADAM).iteration(BERT_336M, 32, cluster)
        assert it.gradient_copies > 0

    def test_coconet_pays_no_copies_or_separate_opt(self, cluster):
        it = CoCoNetStrategy(FUSED_ADAM).iteration(BERT_336M, 32, cluster)
        assert it.gradient_copies == 0.0
        assert it.optimizer == 0.0  # fused into the communication kernel

    def test_ddp_hides_communication(self, cluster):
        ddp = PyTorchDDPStrategy(FUSED_ADAM).iteration(
            BERT_336M, 32, cluster
        )
        nv = NVBertStrategy(FUSED_ADAM).iteration(BERT_336M, 32, cluster)
        assert ddp.communication < nv.communication

    def test_bigger_batch_better_throughput(self, cluster):
        s = CoCoNetStrategy(FUSED_ADAM)
        t8 = s.iteration(BERT_1_2B, 8, cluster).samples_per_second
        t32 = s.iteration(BERT_1_2B, 32, cluster).samples_per_second
        assert t32 > t8

    def test_zero_lamb_does_not_partition(self, cluster):
        z = ZeROStrategy(FUSED_LAMB)
        assert z.memory_plan().replicated_bytes_per_param >= 16

    def test_zero_adam_partitions(self, cluster):
        z = ZeROStrategy(FUSED_ADAM)
        assert z.memory_plan().sliced_bytes_per_param > 0


class TestTable4Shape:
    def test_coconet_beats_copy_based_baselines_336m(self, cluster):
        tputs = {
            s.name: s.throughput(BERT_336M, cluster, cap=32)
            for s in ALL_STRATEGIES(FUSED_ADAM)
        }
        assert tputs["CoCoNet"] > tputs["NV BERT"]
        assert tputs["CoCoNet"] > tputs["ZeRO"]
        # DDP hides communication under the backward pass; our idealized
        # DDP model lands within a few percent of CoCoNet at 336M (the
        # paper's 1.22x gap comes from DDP overheads we do not model —
        # see EXPERIMENTS.md)
        assert tputs["CoCoNet"] > 0.95 * tputs["PyTorch DDP"]

    def test_coconet_fastest_at_1_2b(self, cluster):
        tputs = {
            s.name: s.throughput(BERT_1_2B, cluster, cap=32)
            for s in ALL_STRATEGIES(FUSED_ADAM)
        }
        best = max(v for v in tputs.values() if v is not None)
        assert tputs["CoCoNet"] == pytest.approx(best)

    def test_1_2b_speedup_driven_by_batch(self, cluster):
        # paper: 1.53x over NV BERT for BERT 1.2B
        nv = NVBertStrategy(FUSED_ADAM).throughput(BERT_1_2B, cluster, cap=32)
        cc = CoCoNetStrategy(FUSED_ADAM).throughput(BERT_1_2B, cluster, cap=32)
        assert 1.2 < cc / nv < 2.2

    def test_3_9b_only_partitioned_strategies_run(self, cluster):
        assert NVBertStrategy(FUSED_ADAM).throughput(BERT_3_9B, cluster) is None
        assert (
            CoCoNetStrategy(FUSED_ADAM).throughput(BERT_3_9B, cluster, cap=32)
            is not None
        )

    def test_lamb_lineup_has_four_strategies(self):
        assert len(ALL_STRATEGIES(FUSED_LAMB)) == 4
