"""Tests for device memory accounting and Table 4's batch limits."""

import pytest

from repro.cluster import Cluster, TESLA_V100
from repro.errors import OutOfMemoryError
from repro.runtime.memory import DeviceAllocator
from repro.workloads.models import (
    BERT_1_2B,
    BERT_3_9B,
    BERT_336M,
    COCONET_PLAN,
    NV_BERT_PLAN,
    PYTORCH_DDP_PLAN,
    ZERO_ADAM_PLAN,
    ZERO_LAMB_PLAN,
    max_micro_batch,
)

GiB = 1024**3


class TestAllocator:
    def test_alloc_and_free(self):
        a = DeviceAllocator()
        a.alloc("x", 4 * GiB)
        assert a.used_bytes == 4 * GiB
        a.free("x")
        assert a.used_bytes == 0

    def test_oom_raises(self):
        a = DeviceAllocator()
        a.alloc("x", 30 * GiB)
        with pytest.raises(OutOfMemoryError):
            a.alloc("y", 3 * GiB)

    def test_high_water(self):
        a = DeviceAllocator()
        a.alloc("x", 10 * GiB)
        a.free("x")
        a.alloc("y", 2 * GiB)
        assert a.high_water == 10 * GiB

    def test_duplicate_name_rejected(self):
        a = DeviceAllocator()
        a.alloc("x", 1)
        with pytest.raises(ValueError):
            a.alloc("x", 1)

    def test_free_unknown_rejected(self):
        with pytest.raises(ValueError):
            DeviceAllocator().free("ghost")

    def test_would_fit(self):
        a = DeviceAllocator()
        assert a.would_fit(TESLA_V100.memory_bytes)
        assert not a.would_fit(TESLA_V100.memory_bytes + 1)


class TestMemoryPlans:
    def test_baseline_state_replicated(self):
        s = NV_BERT_PLAN.state_bytes(BERT_1_2B, 256)
        assert s == pytest.approx(18 * 1.2e9, rel=0.01)

    def test_coconet_state_mostly_sliced(self):
        s = COCONET_PLAN.state_bytes(BERT_1_2B, 256)
        # 4 B/param replicated + 12/256 B/param sliced
        assert s == pytest.approx((4 + 12 / 256) * 1.2e9, rel=0.01)

    def test_zero_lamb_cannot_partition(self):
        adam = ZERO_ADAM_PLAN.state_bytes(BERT_1_2B, 256)
        lamb = ZERO_LAMB_PLAN.state_bytes(BERT_1_2B, 256)
        assert lamb > 2 * adam


class TestTable4BatchMatrix:
    """The micro-batch columns of Table 4."""

    def test_adam_336m_all_fit_32(self):
        for plan in (NV_BERT_PLAN, PYTORCH_DDP_PLAN, ZERO_ADAM_PLAN,
                     COCONET_PLAN):
            assert max_micro_batch(BERT_336M, plan, 256, cap=32) == 32

    def test_adam_1_2b(self):
        assert max_micro_batch(BERT_1_2B, NV_BERT_PLAN, 256, cap=32) == 8
        assert max_micro_batch(BERT_1_2B, PYTORCH_DDP_PLAN, 256, cap=32) == 8
        assert max_micro_batch(BERT_1_2B, ZERO_ADAM_PLAN, 256, cap=32) == 32
        assert max_micro_batch(BERT_1_2B, COCONET_PLAN, 256, cap=32) == 32

    def test_adam_3_9b_baselines_oom(self):
        assert max_micro_batch(BERT_3_9B, NV_BERT_PLAN, 256) is None
        assert max_micro_batch(BERT_3_9B, PYTORCH_DDP_PLAN, 256) is None
        assert max_micro_batch(BERT_3_9B, ZERO_ADAM_PLAN, 256, cap=32) == 8
        assert max_micro_batch(BERT_3_9B, COCONET_PLAN, 256, cap=32) == 8

    def test_lamb_336m_coconet_doubles_batch(self):
        assert max_micro_batch(BERT_336M, NV_BERT_PLAN, 256, cap=256) == 64
        assert max_micro_batch(BERT_336M, ZERO_LAMB_PLAN, 256, cap=256) == 64
        assert max_micro_batch(BERT_336M, COCONET_PLAN, 256, cap=256) == 128

    def test_lamb_3_9b_only_coconet_fits(self):
        assert max_micro_batch(BERT_3_9B, ZERO_LAMB_PLAN, 256) is None
        assert max_micro_batch(BERT_3_9B, COCONET_PLAN, 256, cap=256) == 8

    def test_cap_respected(self):
        assert max_micro_batch(BERT_336M, COCONET_PLAN, 256, cap=4) == 4

    def test_more_ranks_shrink_sliced_state(self):
        small = COCONET_PLAN.state_bytes(BERT_3_9B, 16)
        large = COCONET_PLAN.state_bytes(BERT_3_9B, 256)
        assert large < small
