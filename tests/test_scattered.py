"""Tests for scattered-tensor bucketing (§5.4, Table 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoCoNetError
from repro.scattered import (
    BUCKET_ELEMENTS,
    Bucket,
    ScatteredTensorSet,
    bucket_memory_overhead,
)


@pytest.fixture
def rng():
    return np.random.RandomState(13)


def make_set(rng, sizes):
    return ScatteredTensorSet(
        [rng.randn(s).astype(np.float32) for s in sizes]
    )


class TestBuckets:
    def test_bucket_size_cap(self):
        with pytest.raises(CoCoNetError):
            Bucket(0, 0, BUCKET_ELEMENTS + 1)
        with pytest.raises(CoCoNetError):
            Bucket(0, 0, 0)

    def test_bucketing_splits_large_tensor(self, rng):
        s = make_set(rng, [2500])
        lengths = [b.length for b in s.buckets]
        assert lengths == [1024, 1024, 452]

    def test_small_tensors_one_bucket_each(self, rng):
        s = make_set(rng, [10, 20, 30])
        assert len(s.buckets) == 3

    def test_memory_overhead_formula(self):
        # 12 * ceil(N / 2^10) bytes (§5.4)
        assert bucket_memory_overhead(1024) == 12
        assert bucket_memory_overhead(1025) == 24
        assert bucket_memory_overhead(0) == 0

    def test_bert_overhead_is_fraction_of_percent(self):
        # "for BERT model with 334M elements, the memory requirement
        # is 0.6%" — of the fp16 parameter bytes
        n = 334_000_000
        overhead = bucket_memory_overhead(n)
        assert overhead / (2 * n) == pytest.approx(0.006, rel=0.03)

    def test_metadata_bytes_matches_formula(self, rng):
        s = make_set(rng, [3000, 500])
        expected = bucket_memory_overhead(3000) + bucket_memory_overhead(500)
        assert s.metadata_bytes == expected


class TestWarpAssignment:
    def test_round_robin(self, rng):
        s = make_set(rng, [1024 * 8])
        warps = [s.warp_of_bucket(i, 4) for i in range(8)]
        assert warps == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_buckets_of_warp_partition(self, rng):
        s = make_set(rng, [1024 * 9])
        all_buckets = []
        for w in range(4):
            all_buckets.extend(s.buckets_of_warp(w, 4))
        assert len(all_buckets) == len(s.buckets)


class TestDataMovement:
    def test_gather_flat_concatenates(self, rng):
        s = make_set(rng, [4, 6])
        flat = s.gather_flat()
        np.testing.assert_array_equal(flat[:4], s.tensors[0])
        np.testing.assert_array_equal(flat[4:], s.tensors[1])

    def test_scatter_flat_roundtrip(self, rng):
        s = make_set(rng, [4, 6, 2000])
        original = s.gather_flat()
        s.scatter_flat(original * 2.0)
        np.testing.assert_allclose(s.gather_flat(), original * 2.0)

    def test_scatter_wrong_size_rejected(self, rng):
        s = make_set(rng, [4])
        with pytest.raises(CoCoNetError):
            s.scatter_flat(np.zeros(5))

    def test_element_view_equals_gather(self, rng):
        s = make_set(rng, [300, 1500, 7])
        np.testing.assert_array_equal(s.element_view(), s.gather_flat())

    def test_apply_elementwise_through_buckets(self, rng):
        # the scattered kernel path: update in place via bucket views
        s = make_set(rng, [100, 2048])
        before = s.gather_flat()
        s.apply_elementwise(lambda x: x * 3.0)
        np.testing.assert_allclose(s.gather_flat(), before * 3.0, rtol=1e-6)

    def test_empty_set_rejected(self):
        with pytest.raises(CoCoNetError):
            ScatteredTensorSet([])

    @given(
        sizes=st.lists(st.integers(1, 3000), min_size=1, max_size=8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_bucket_views_cover_exactly_once(self, sizes, seed):
        rng = np.random.RandomState(seed)
        s = make_set(rng, sizes)
        assert s.total_elements == sum(sizes)
        assert s.element_view().size == sum(sizes)
        # every bucket stays within its tensor
        for b in s.buckets:
            assert b.offset + b.length <= s.tensors[b.tensor_index].size


class TestScatteredAdamParity:
    def test_scattered_update_equals_contiguous(self, rng):
        """Table 2's semantic core: updating through buckets equals
        updating the equivalent contiguous buffer."""
        sizes = [7, 1024, 555, 2049]
        s = make_set(rng, sizes)
        contiguous = s.gather_flat().copy()

        def adam_like(x):
            return x - 0.01 * x / (np.sqrt(np.abs(x)) + 1e-6)

        s.apply_elementwise(adam_like)
        np.testing.assert_allclose(
            s.gather_flat(), adam_like(contiguous), rtol=1e-6
        )
