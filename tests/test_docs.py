"""The documentation tree stays wired to the repository.

Every relative Markdown link in ``docs/``, ``README.md`` and
``EXPERIMENTS.md`` must resolve to a real file or directory, and every
``#fragment`` pointing into a Markdown file must match a heading there
(GitHub's slug rules). A moved source file or renamed section fails
the suite instead of silently rotting the docs.
"""

import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(ROOT, "docs")

CHECKED = sorted(
    [
        os.path.join(DOCS, name)
        for name in os.listdir(DOCS)
        if name.endswith(".md")
    ]
    + [os.path.join(ROOT, "README.md"), os.path.join(ROOT, "EXPERIMENTS.md")]
)

# inline links: [text](target) — skipping images' extra ! is harmless
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_INLINE_LINK_TEXT = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def links_of(path):
    with open(path) as f:
        text = f.read()
    # fenced code blocks are not rendered as links
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    return [
        (m.group(1), line_no)
        for line_no, line in enumerate(text.splitlines(), 1)
        for m in _LINK.finditer(line)
    ]


def github_slug(heading):
    """GitHub's anchor for a heading line (base slug, no -N dedup)."""
    text = _INLINE_LINK_TEXT.sub(r"\1", heading)  # linked headings
    text = text.replace("`", "").strip().lower()
    out = []
    for ch in text:
        if ch.isalnum() or ch in "-_":
            out.append(ch)
        elif ch == " ":
            out.append("-")
        # everything else (.,/():&§+…) is dropped
    return "".join(out)


def slugs_of(path):
    with open(path) as f:
        text = f.read()
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    return {
        github_slug(m.group(2))
        for line in text.splitlines()
        if (m := _HEADING.match(line))
    }


@pytest.mark.parametrize(
    "doc", CHECKED, ids=[os.path.relpath(p, ROOT) for p in CHECKED]
)
def test_relative_links_resolve(doc):
    problems = []
    for target, line in links_of(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = target.partition("#")
        base = os.path.dirname(doc)
        resolved = (
            doc if not target else os.path.normpath(
                os.path.join(base, target)
            )
        )
        rel = os.path.relpath(doc, ROOT)
        if not os.path.exists(resolved):
            problems.append(f"{rel}:{line}: broken link -> {target}")
            continue
        if fragment and resolved.endswith(".md"):
            if fragment not in slugs_of(resolved):
                problems.append(
                    f"{rel}:{line}: no heading "
                    f"#{fragment} in {target or rel}"
                )
        if not os.path.commonpath(
            [ROOT, os.path.abspath(resolved)]
        ) == ROOT:
            problems.append(f"{rel}:{line}: link escapes the repo")
    assert not problems, "\n" + "\n".join(problems)


def test_docs_tree_is_complete():
    # the entry points the README advertises must exist
    for name in ("index.md", "architecture.md", "serving.md"):
        assert os.path.exists(os.path.join(DOCS, name))


def test_architecture_mentions_every_stage():
    # the walkthrough must keep covering the whole pipeline
    with open(os.path.join(DOCS, "architecture.md")) as f:
        text = f.read()
    for needle in (
        "repro.frontend", "transforms", "lower", "artifact",
        "runtime", "spmd", "codegen", "nccl", "perf",
        "autotuner", "observe", "serve",
    ):
        assert needle in text, f"architecture.md lost its {needle} stage"
