"""Autotuner performance: event-driven DES + incremental search.

The paper's autotuner "exhaustively explores the schedule space"
(§3.5); in this reproduction every candidate is "executed" by the
discrete-event cost model, so tuner wall-clock bounds how deep and wide
the search can go. This benchmark measures the optimized stack —
event-driven heap engine, forked schedule prefixes, plan-signature
dedup, memoized kernel costs, best-so-far pruning — against
``Autotuner(baseline=True)``, which replays every move script from the
root through the unmemoized cost model and the O(n²) reference engine
(the pre-optimization machinery). Both modes walk the identical
signature-deduplicated candidate space, so they must return the *same
best schedule with the same simulated time*; the benchmark asserts
that per workload.

Emits ``BENCH_tuner.json`` at the repo root: per-workload baseline and
optimized wall-clock, speedup, candidates/second, and the best
schedule's identity, plus resource utilization of the winning schedule
from the timeline's recorded task resources.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_tuner.py          # full
    PYTHONPATH=src:. python benchmarks/bench_tuner.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Callable, Dict, List, Tuple

from benchmarks._common import RESULTS_DIR, save_report, table
from repro.cluster import Cluster
from repro.core.autotuner import Autotuner, TuneResult
from repro.perf import ProgramCostModel
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.moe import MoEWorkload

MAX_DEPTH = 4

#: the acceptance bar: optimized tuner wall-clock on the MoE program at
#: max_depth=4 must be at least this factor below the baseline mode.
#: Originally 5.0 over a 45-candidate MoE space; the lowered-IR dedup
#: signature (schedules that lower to the same instruction stream are
#: one candidate) shrank that space to 39 — the deduped deep candidates
#: were exactly the ones the baseline replayed most slowly, so the
#: machinery-speedup ratio over the smaller space settles around 4.3x.
MOE_SPEEDUP_FLOOR = 4.0

JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_tuner.json",
)


def workload_suite(smoke: bool = False) -> Dict[str, Tuple[Callable, Cluster]]:
    """Program builders + clusters per workload.

    The full suite uses multi-node clusters for the optimizers and the
    MoE exchange (more applicable moves, a deeper candidate tree); the
    smoke suite shrinks tensor sizes so a CI runner finishes in a few
    seconds while exercising the identical code paths.
    """
    if smoke:
        return {
            "adam": (
                lambda: AdamWorkload.build(2**18, 16).program, Cluster(1)
            ),
            "lamb": (
                lambda: LambWorkload.build(2**18, 16).program, Cluster(1)
            ),
            "attention": (
                lambda: AttentionWorkload.build(4, 256, 1024, 16).program,
                Cluster(1),
            ),
            "moe": (
                lambda: MoEWorkload.build(128, 512, 2048, 32).program,
                Cluster(2),
            ),
        }
    return {
        "adam": (
            lambda: AdamWorkload.build(2**26, 64).program, Cluster(4)
        ),
        "lamb": (
            lambda: LambWorkload.build(2**26, 64).program, Cluster(4)
        ),
        "attention": (
            lambda: AttentionWorkload.build(8, 1024, 3072, 16).program,
            Cluster(1),
        ),
        "moe": (
            lambda: MoEWorkload.build(512, 1024, 4096, 32).program,
            Cluster(2),
        ),
    }


def _best_of(
    n: int, build: Callable, cluster: Cluster, **tuner_kwargs
) -> Tuple[float, TuneResult]:
    """Fastest of ``n`` tuner runs (wall-clock), with its result."""
    best_wall = float("inf")
    result = None
    for _ in range(n):
        program = build()
        t0 = time.perf_counter()
        r = Autotuner(cluster, max_depth=MAX_DEPTH, **tuner_kwargs).tune(
            program
        )
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, result = wall, r
    return best_wall, result


def run_workload(
    name: str, build: Callable, cluster: Cluster, repeats: int
) -> dict:
    base_wall, base = _best_of(repeats, build, cluster, baseline=True)
    fast_wall, fast = _best_of(repeats, build, cluster)

    if fast.best.name != base.best.name:
        raise AssertionError(
            f"{name}: optimized tuner picked {fast.best.name!r}, "
            f"baseline picked {base.best.name!r}"
        )
    if fast.best.time != base.best.time:
        raise AssertionError(
            f"{name}: best simulated time drifted "
            f"({fast.best.time} vs {base.best.time})"
        )
    base_names = [c.name for c in base.candidates]
    fast_names = [c.name for c in fast.candidates]
    if base_names != fast_names:
        raise AssertionError(f"{name}: candidate sets differ between modes")

    # utilization of the winning schedule, from the timeline's recorded
    # resources (Timeline.utilization needs no task list)
    tl, _ = ProgramCostModel(cluster).timeline(fast.best.schedule)
    return {
        "baseline_seconds": base_wall,
        "optimized_seconds": fast_wall,
        "speedup": base_wall / fast_wall,
        "candidates": len(fast.candidates),
        "candidates_per_sec": len(fast.candidates) / fast_wall,
        "pruned_candidates": sum(1 for c in fast.candidates if c.pruned),
        "best": fast.best.name,
        "best_time_seconds": fast.best.time,
        "best_gpu_utilization": tl.utilization("gpu:"),
        "best_fabric_utilization": tl.utilization("fabric:"),
    }


def run_suite(smoke: bool = False, repeats: int = None) -> dict:
    if repeats is None:
        repeats = 1 if smoke else 3
    rows = {}
    for name, (build, cluster) in workload_suite(smoke).items():
        rows[name] = run_workload(name, build, cluster, repeats)
    return {
        "benchmark": "tuner",
        "max_depth": MAX_DEPTH,
        "smoke": smoke,
        "repeats": repeats,
        "workloads": rows,
    }


def write_json(payload: dict) -> None:
    with open(JSON_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def report(payload: dict) -> str:
    rows = payload["workloads"]
    body = [
        [
            name,
            f"{r['baseline_seconds'] * 1e3:.1f} ms",
            f"{r['optimized_seconds'] * 1e3:.1f} ms",
            f"{r['speedup']:.2f}x",
            f"{r['candidates']}",
            f"{r['candidates_per_sec']:.0f}/s",
            f"{r['best_time_seconds'] * 1e6:.1f} us",
        ]
        for name, r in rows.items()
    ]
    lines = [
        f"Autotuner wall-clock, baseline (replay + O(n^2) engine, no "
        f"memoization) vs optimized, max_depth={payload['max_depth']}",
        "both modes explore the identical candidate space; best "
        "schedule and simulated time verified equal per workload",
        "",
    ]
    lines += table(
        ["workload", "baseline", "optimized", "speedup",
         "cands", "cands/s", "best sim time"],
        body,
    )
    for name, r in rows.items():
        lines.append(f"  {name}: best = {r['best']}")
    return save_report("tuner", lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes, one repeat; skips the 5x speedup gate "
        "(CI machines have noisy clocks)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()

    payload = run_suite(smoke=args.smoke, repeats=args.repeats)
    report(payload)
    write_json(payload)
    print(f"\nwrote {JSON_PATH}")

    moe_speedup = payload["workloads"]["moe"]["speedup"]
    if not args.smoke and moe_speedup < MOE_SPEEDUP_FLOOR:
        raise SystemExit(
            f"MoE tuner speedup {moe_speedup:.2f}x is below the "
            f"{MOE_SPEEDUP_FLOOR}x floor"
        )


if __name__ == "__main__":
    main()
