"""Tuning-as-a-service: cold vs warm sustained request rate.

Drives a Zipf-distributed (workload, shape) request mix through the
:class:`~repro.serve.service.TuningService` — the traffic shape of a
production tuning service, where a few popular shapes dominate and a
long tail trickles — and measures what the persistent schedule cache
(:mod:`repro.serve.cache`) buys:

* **cold** — every unique shape submitted against an empty cache: each
  one runs the full autotuner search on the worker pool. This is the
  request rate *without* the serving layer.
* **warm** — the Zipf replay over the now-tuned universe: every
  request is a memory hit answered on the event loop. The acceptance
  floor is **warm >= 100x the cold-tune request rate**.
* **cross-process warm** — a *fresh* service over the same cache
  directory: first touches hit disk records, the rest memory; zero
  tuner invocations proves persistence across processes.
* **coalescing** — a concurrent burst of identical misses on an empty
  cache must collapse into one tuning task per unique shape (tuner
  invocations == uniques << submitted requests).
* **fidelity** — a served schedule's execution digest must equal a
  freshly tuned schedule's digest (same seeded inputs, bit for bit).

Emits ``BENCH_serve.json`` at the repo root, gated in CI by
``benchmarks/baselines/BENCH_serve.json``::

    PYTHONPATH=src:. python benchmarks/bench_serve.py           # full
    PYTHONPATH=src:. python benchmarks/bench_serve.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import save_report, table  # noqa: E402

from repro.cli import _digest, _seeded_inputs  # noqa: E402
from repro.core.autotuner import Autotuner  # noqa: E402
from repro.runtime.executor import Executor  # noqa: E402
from repro.serve import (  # noqa: E402
    ScheduleCache,
    TuneRequest,
    TuningService,
)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_serve.json")

ZIPF_S = 1.1
MAX_DEPTH = 2
MAX_WORKERS = 2


def request_universe(smoke: bool) -> List[TuneRequest]:
    """The unique shapes behind the Zipf mix, most popular first."""
    adam_sizes = [2 ** k for k in range(10, 16 if smoke else 20)]
    reqs = [
        TuneRequest.make("adam", num_elements=n, world_size=4)
        for n in adam_sizes
    ]
    reqs += [
        TuneRequest.make("lamb", num_elements=2 ** k, world_size=4)
        for k in (10, 12)
    ]
    if not smoke:
        reqs += [
            TuneRequest.make(
                "moe", capacity=3, model_dim=6, ffn_dim=8, world_size=4
            ),
            TuneRequest.make(
                "attention", batch=4, seq=8, hidden=16, world_size=4
            ),
        ]
    return reqs


def zipf_mix(
    universe: List[TuneRequest], n: int, rng: np.random.RandomState
) -> List[TuneRequest]:
    """``n`` draws over the universe with P(rank i) ∝ 1/i^ZIPF_S."""
    ranks = np.arange(1, len(universe) + 1, dtype=np.float64)
    p = ranks ** -ZIPF_S
    p /= p.sum()
    return [universe[i] for i in rng.choice(len(universe), size=n, p=p)]


async def timed_submit(svc: TuningService, requests) -> Dict:
    t0 = time.perf_counter()
    results = await svc.submit_many(requests)
    elapsed = time.perf_counter() - t0
    by_source: Dict[str, int] = {}
    for r in results:
        by_source[r.source] = by_source.get(r.source, 0) + 1
    return {
        "requests": len(results),
        "elapsed_s": elapsed,
        "requests_per_sec": len(results) / elapsed,
        "by_source": by_source,
    }


async def phase_cold_and_warm(universe, replay, cache_dir) -> Dict:
    async with TuningService(
        ScheduleCache(cache_dir),
        max_workers=MAX_WORKERS, max_depth=MAX_DEPTH,
    ) as svc:
        cold = await timed_submit(svc, universe)
        warm = await timed_submit(svc, replay)
        cold["tunes"] = svc.metrics.get("serve.tunes")
    # a fresh service over the same directory: the persistence check
    async with TuningService(
        ScheduleCache(cache_dir),
        max_workers=MAX_WORKERS, max_depth=MAX_DEPTH,
    ) as svc2:
        cross = await timed_submit(svc2, replay[: min(len(replay), 500)])
        cross["tunes"] = svc2.metrics.get("serve.tunes")
    return {"cold": cold, "warm": warm, "cross_process": cross}


async def phase_coalescing(universe, cache_dir) -> Dict:
    """A burst of duplicate misses must fold into one tune per shape."""
    uniques = universe[:3]
    copies = 8
    burst: List[TuneRequest] = [r for r in uniques for _ in range(copies)]
    async with TuningService(
        ScheduleCache(cache_dir),
        max_workers=MAX_WORKERS, max_depth=MAX_DEPTH,
    ) as svc:
        stats = await timed_submit(svc, burst)
        tunes = svc.metrics.get("serve.tunes")
        coalesced = svc.metrics.get("serve.coalesced")
        misses = svc.metrics.get("serve.misses")
    return {
        "unique_shapes": len(uniques),
        "submitted": len(burst),
        "miss_requests": misses,
        "tuner_invocations": tunes,
        "coalesced_requests": coalesced,
        "by_source": stats["by_source"],
        "ok": tunes == len(uniques) and tunes < misses,
    }


async def phase_digest(cache_dir) -> Dict:
    """Served artifact ≡ freshly tuned artifact, execution digest."""
    req = TuneRequest.make("adam", num_elements=1024, world_size=4)
    async with TuningService(
        ScheduleCache(cache_dir),
        max_workers=MAX_WORKERS, max_depth=MAX_DEPTH,
    ) as svc:
        served = await svc.submit(req)      # tunes
        again = await svc.submit(req)       # memory hit
    fresh = Autotuner(req.cluster(), max_depth=MAX_DEPTH).tune(
        req.build_program()
    )
    ex = Executor()

    def digest_of(art_or_sched, program) -> str:
        inputs = _seeded_inputs(program, seed=0)
        return _digest(ex.run_lowered(art_or_sched, inputs,
                                      allow_downcast=True))

    served_digest = digest_of(again.artifact, again.artifact.program)
    fresh_digest = digest_of(fresh.best.schedule, req.build_program())
    return {
        "request": req.describe(),
        "served_schedule": again.schedule_name,
        "fresh_schedule": fresh.best.name,
        "served_digest": served_digest,
        "fresh_digest": fresh_digest,
        "match": served_digest == fresh_digest,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller universe and replay (CI); same acceptance floors",
    )
    parser.add_argument(
        "--replay", type=int, default=None,
        help="warm replay length (default 2000 smoke / 20000 full)",
    )
    args = parser.parse_args()
    replay_n = args.replay or (2000 if args.smoke else 20000)
    rng = np.random.RandomState(0x21BF)

    universe = request_universe(args.smoke)
    replay = zipf_mix(universe, replay_n, rng)

    with tempfile.TemporaryDirectory() as d:
        rates = asyncio.run(
            phase_cold_and_warm(universe, replay, os.path.join(d, "main"))
        )
        coalescing = asyncio.run(
            phase_coalescing(universe, os.path.join(d, "burst"))
        )
        digest = asyncio.run(phase_digest(os.path.join(d, "digest")))

    cold_rate = rates["cold"]["requests_per_sec"]
    warm_rate = rates["warm"]["requests_per_sec"]
    speedup = warm_rate / cold_rate
    report = {
        "benchmark": "serve",
        "mode": "smoke" if args.smoke else "full",
        "zipf": {
            "s": ZIPF_S,
            "universe": len(universe),
            "replay_requests": replay_n,
        },
        "max_depth": MAX_DEPTH,
        "max_workers": MAX_WORKERS,
        "cold": rates["cold"],
        "warm": rates["warm"],
        "cross_process": rates["cross_process"],
        "coalescing": coalescing,
        "digest": digest,
        "acceptance": {
            "warm_vs_cold_speedup": speedup,
            "coalescing_ok": coalescing["ok"],
            "digest_match": digest["match"],
            "cross_process_tunes": rates["cross_process"]["tunes"],
        },
    }

    rows = [
        ["cold (tune-all)", rates["cold"]["requests"],
         f"{rates['cold']['elapsed_s']:.2f} s", f"{cold_rate:.1f}"],
        ["warm (Zipf replay)", rates["warm"]["requests"],
         f"{rates['warm']['elapsed_s']:.2f} s", f"{warm_rate:.0f}"],
        ["warm (new process)", rates["cross_process"]["requests"],
         f"{rates['cross_process']['elapsed_s']:.2f} s",
         f"{rates['cross_process']['requests_per_sec']:.0f}"],
    ]
    lines = [
        "Tuning as a service: cold vs warm request rate "
        f"(Zipf s={ZIPF_S}, {len(universe)} unique shapes, "
        f"{replay_n}-request replay)",
        "",
    ]
    lines += table(["phase", "requests", "elapsed", "req/s"], rows)
    lines += [
        "",
        f"warm vs cold speedup: {speedup:.0f}x (floor 100x)",
        f"coalescing: {coalescing['submitted']} submitted, "
        f"{coalescing['miss_requests']:.0f} misses -> "
        f"{coalescing['tuner_invocations']:.0f} tuner invocations "
        f"({coalescing['coalesced_requests']:.0f} coalesced)",
        f"served ≡ fresh digest: {digest['match']}",
    ]
    save_report("serve", lines)

    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    assert speedup >= 100, (
        f"warm replay must serve >= 100x the cold-tune rate, "
        f"got {speedup:.1f}x"
    )
    assert coalescing["ok"], (
        "identical in-flight requests were not coalesced: "
        f"{coalescing['tuner_invocations']:.0f} tuner invocations for "
        f"{coalescing['unique_shapes']} unique shapes"
    )
    assert digest["match"], (
        "served schedule's execution digest differs from the freshly "
        "tuned schedule's"
    )
    assert rates["cross_process"]["tunes"] == 0, (
        "a fresh service over a warm cache directory re-tuned"
    )


if __name__ == "__main__":
    main()
