"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper on the
simulated cluster, prints it side by side with the paper's reported
numbers, and persists the report under ``benchmarks/results/``. The
assertions check *shape* — who wins, where crossovers fall, rough
factors — not absolute milliseconds (our substrate is a simulator, not
the authors' 256-GPU testbed).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, lines: Iterable[str]) -> str:
    """Print a report and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text)
    return text


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """Render a fixed-width text table."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(v) for v in col) for col in cols]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    out = [fmt.format(*headers)]
    out.append("  ".join("-" * w for w in widths))
    out.extend(fmt.format(*(str(v) for v in row)) for row in rows)
    return out
