"""Fault tolerance & elasticity: the SPMD backend under injected faults.

Four measurements over :mod:`repro.runtime.faults`:

* **fault matrix** — one seeded ``FaultPlan.scenario`` per failure mode
  (straggler, stalled publish, dropped chunk, dead rank) on the fused
  Adam schedule at 4 real ranks; every scenario must either survive
  bit-identically or recover elastically, and every scenario must
  reproduce exactly from its seed.
* **straggler makespans** — the measured per-rank trace makespan of a
  clean run vs one with ``slow_rank(0, x3)``, against the DES cost
  model's *predicted* ratio under the same plan
  (``Engine(slowdown=plan.resource_slowdowns())``) — straggler-aware
  prediction validated end to end.
* **transient recovery** — ``stall_publish`` and ``drop_chunk`` on the
  chunked mm→AllReduce overlap pipeline: soft-retry escalation and
  redelivery must land bit-identical outputs.
* **elastic recovery overhead** — ``die(1)`` at 4 ranks with
  ``elastic=True``: wall-clock of the re-lowered recovery vs a direct
  run at the recovered world size, plus a run-it-twice determinism
  check on the whole failure path.

Emits ``BENCH_faults.json`` at the repo root::

    PYTHONPATH=src:. python benchmarks/bench_faults.py            # full
    PYTHONPATH=src:. python benchmarks/bench_faults.py --smoke    # CI

The regression gate (``benchmarks/check_regression.py``) compares the
recorded ratios and correctness booleans against
``benchmarks/baselines/BENCH_faults.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import save_report, table  # noqa: E402

from repro.cluster import Cluster  # noqa: E402
from repro.core import (  # noqa: E402
    FP32, RANK, AllReduce, Binary, Execute, MatMul, Replicated, Sliced,
    world,
)
from repro.core.tensor import Tensor  # noqa: E402
from repro.core.transforms import Schedule  # noqa: E402
from repro.observe import Tracer  # noqa: E402
from repro.observe.events import SpanEvent  # noqa: E402
from repro.perf.engine import Engine  # noqa: E402
from repro.perf.program_cost import ProgramCostModel  # noqa: E402
from repro.runtime import Executor, FaultPlan  # noqa: E402
from repro.workloads.adam import AdamWorkload  # noqa: E402

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_faults.json")

NRANKS = 4
STRAGGLER_FACTOR = 3.0


def adam_setup(rng: np.random.RandomState, N: int):
    wl = AdamWorkload.build(N, NRANKS)
    inputs = dict(
        g=rng.randn(NRANKS, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )
    return wl, inputs


def overlap_setup(rng: np.random.RandomState, hidden: int = 64):
    """The chunked mm→AllReduce overlap pipeline (bench_spmd's shape)."""
    W = world(NRANKS)
    w = Tensor(FP32, (hidden, hidden), Sliced(0), W, RANK, name="w")
    x = Tensor(FP32, (4, 8, hidden), Sliced(2), W, RANK, name="x")
    b = Tensor(FP32, (hidden,), Replicated, W, name="b")
    mm = MatMul(x, w, name="mm")
    ar = AllReduce("+", mm, name="ar")
    out = Binary("+", ar, b, name="out")
    prog = Execute("overlap_faults", [w, x, b], [out])
    sched = Schedule(prog)
    sched.overlap(mm, ar)
    inputs = {
        "w": rng.randn(hidden, hidden),
        "x": rng.randn(4, 8, hidden),
        "b": rng.randn(hidden),
    }
    return sched, inputs


def equal_outputs(a, b) -> bool:
    return sorted(a._outputs) == sorted(b._outputs) and all(
        np.array_equal(a.output(k), b.output(k)) for k in a._outputs
    )


def trace_makespan(tracer: Tracer) -> float:
    """Span of the merged per-rank timeline (excludes process spawn)."""
    spans = [
        e for e in tracer.events
        if isinstance(e, SpanEvent) and str(e.pid).startswith("rank")
    ]
    if not spans:
        return 0.0
    return max(e.ts + e.dur for e in spans) - min(e.ts for e in spans)


def fault_matrix(rng: np.random.RandomState, seeds: List[int]) -> Dict:
    """Every seeded scenario survives or recovers, reproducibly."""
    wl, inputs = adam_setup(rng, 56)
    sched = wl.schedule_fused()
    oracle = Executor().run_lowered(sched, inputs, allow_downcast=True)

    def relower(ws):
        wl2 = AdamWorkload.build(56, ws)
        rng2 = np.random.RandomState(0xFA17)
        return wl2.schedule_fused(), dict(
            g=rng2.randn(ws, 56) * 0.1,
            p=rng2.randn(56),
            m=rng2.randn(56) * 0.01,
            v=np.abs(rng2.randn(56)) * 0.01,
            lr=0.01,
            t=3.0,
        )

    entries = []
    for seed in seeds:
        plan = FaultPlan.scenario(seed, NRANKS)
        res = Executor().run_spmd(
            sched, inputs, allow_downcast=True, fault_plan=plan,
            soft_timeout=0.5, timeout=60.0,
            elastic=True, relower=relower,
        )
        recovered = getattr(res, "elastic", None)
        if recovered is None:
            ok = equal_outputs(res, oracle)
        else:
            direct = Executor().run_lowered(
                *relower(recovered["world_size"]), allow_downcast=True
            )
            ok = equal_outputs(res, direct)
        entries.append({
            "seed": seed,
            "plan": plan.describe(),
            "recovered_world": None if recovered is None
            else recovered["world_size"],
            "equal_outputs": bool(ok),
        })
    return {
        "scenarios": entries,
        "all_ok": all(e["equal_outputs"] for e in entries),
    }


def straggler_makespans(rng: np.random.RandomState, repeats: int) -> Dict:
    """Measured straggler stretch vs the DES model's prediction."""
    wl, inputs = adam_setup(rng, 1680)
    sched = wl.schedule_fused()
    plan = FaultPlan(seed=0).slow_rank(0, STRAGGLER_FACTOR)
    wire = 8.0  # s/MB: wire sleeps dominate, so the stretch is visible

    def measure(fault_plan) -> float:
        tracer = Tracer()
        Executor().run_spmd(
            sched, inputs, allow_downcast=True, wire_s_per_mb=wire,
            fault_plan=fault_plan, timeout=120.0, tracer=tracer,
        )
        return trace_makespan(tracer)

    clean = [measure(None) for _ in range(repeats)]
    slowed = [measure(plan) for _ in range(repeats)]
    measured_ratio = float(np.median(slowed) / np.median(clean))

    model = ProgramCostModel(Cluster(1))
    timeline, tasks = model.timeline(sched)
    degraded = Engine(slowdown=plan.resource_slowdowns()).run(tasks)
    predicted_ratio = float(degraded.makespan / timeline.makespan)
    return {
        "factor": STRAGGLER_FACTOR,
        "clean_makespan_s": float(np.median(clean)),
        "slowed_makespan_s": float(np.median(slowed)),
        "measured_ratio": measured_ratio,
        "predicted_makespan_clean_s": timeline.makespan,
        "predicted_makespan_slowed_s": degraded.makespan,
        "predicted_ratio": predicted_ratio,
    }


def transient_recovery(rng: np.random.RandomState) -> Dict:
    """stall_publish and drop_chunk ride soft retries to a clean finish."""
    sched, inputs = overlap_setup(rng)
    ex = Executor()
    oracle = ex.run_lowered(sched, inputs, allow_downcast=True)
    out: Dict[str, Dict] = {}
    plans = {
        "stall": FaultPlan(seed=1).stall_publish("g", 0.05, rank=1),
        "drop": FaultPlan(seed=2).drop_chunk("g", 1, rank=0,
                                             redeliver=0.05),
    }
    for name, plan in plans.items():
        tracer = Tracer()
        res = ex.run_spmd(
            sched, inputs, allow_downcast=True, fault_plan=plan,
            soft_timeout=0.01, timeout=60.0, tracer=tracer,
        )
        stalls = sum(
            1 for e in tracer.events if getattr(e, "cat", "") == "stall"
        )
        out[name] = {
            "plan": plan.describe(),
            "equal_outputs": equal_outputs(res, oracle),
            "soft_retries_observed": stalls,
        }
    return out


def elastic_overhead(rng: np.random.RandomState) -> Dict:
    """die(1) at 4 ranks: recovery wall-clock vs a direct 3-rank run."""
    N = 60  # divisible by 4 (launch) and by 3 (the recovered world)

    def relower(ws):
        wl = AdamWorkload.build(N, ws)
        rng2 = np.random.RandomState(0xE1A5)
        return wl.schedule_fused(), dict(
            g=rng2.randn(ws, N) * 0.1,
            p=rng2.randn(N),
            m=rng2.randn(N) * 0.01,
            v=np.abs(rng2.randn(N)) * 0.01,
            lr=0.01,
            t=3.0,
        )

    plan = FaultPlan(seed=3).die(1, at_site="g")

    def recover():
        wl, inputs = adam_setup(np.random.RandomState(0xE1A5), N)
        return Executor().run_spmd(
            wl.schedule_fused(), inputs, allow_downcast=True,
            fault_plan=plan, soft_timeout=0.5, timeout=60.0,
            elastic=True, relower=relower,
        )

    res = recover()
    ws = res.elastic["world_size"]
    sched_direct, inputs_direct = relower(ws)
    t0 = time.perf_counter()
    direct = Executor().run_spmd(
        sched_direct, inputs_direct, allow_downcast=True, timeout=60.0
    )
    direct_seconds = time.perf_counter() - t0

    # the whole failure path must reproduce from the seed
    res2 = recover()
    deterministic = (
        res.elastic["failed_ranks"] == res2.elastic["failed_ranks"]
        and res.elastic["attempted"] == res2.elastic["attempted"]
        and res.elastic["world_size"] == res2.elastic["world_size"]
        and equal_outputs(res, res2)
    )
    return {
        "plan": plan.describe(),
        "failed_ranks": res.elastic["failed_ranks"],
        "attempted": res.elastic["attempted"],
        "recovered_world": ws,
        "recovery_seconds": res.elastic["recovery_seconds"],
        "direct_seconds": direct_seconds,
        "overhead_ratio": res.elastic["recovery_seconds"] / direct_seconds,
        "equal_outputs": equal_outputs(res, direct),
        "deterministic": bool(deterministic),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer scenarios and repeats (CI)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    repeats = args.repeats or (3 if args.smoke else 7)
    seeds = list(range(4)) if args.smoke else list(range(8))
    rng = np.random.RandomState(0xFA17)

    matrix = fault_matrix(rng, seeds)
    straggler = straggler_makespans(rng, repeats)
    transient = transient_recovery(rng)
    elastic = elastic_overhead(rng)

    acceptance = {
        "matrix_all_ok": matrix["all_ok"],
        "transient_ok": all(
            v["equal_outputs"] for v in transient.values()
        ),
        "elastic_ok": elastic["equal_outputs"],
        "deterministic": elastic["deterministic"],
        "straggler_measured_ratio": straggler["measured_ratio"],
        "straggler_predicted_ratio": straggler["predicted_ratio"],
        "passed": bool(
            matrix["all_ok"]
            and all(v["equal_outputs"] for v in transient.values())
            and elastic["equal_outputs"]
            and elastic["deterministic"]
            and straggler["measured_ratio"] > 1.0
            and straggler["predicted_ratio"] > 1.0
        ),
    }
    report = {
        "benchmark": "faults",
        "mode": "smoke" if args.smoke else "full",
        "nranks": NRANKS,
        "matrix": matrix,
        "straggler": straggler,
        "transient": transient,
        "elastic": elastic,
        "acceptance": acceptance,
    }

    rows = [
        ["fault-matrix scenarios", len(matrix["scenarios"])],
        ["matrix all ok", matrix["all_ok"]],
        ["straggler measured ratio",
         f"{straggler['measured_ratio']:.2f}x"],
        ["straggler predicted ratio",
         f"{straggler['predicted_ratio']:.2f}x"],
        ["stall soft retries", transient["stall"]["soft_retries_observed"]],
        ["drop equal outputs", transient["drop"]["equal_outputs"]],
        ["elastic recovered world", elastic["recovered_world"]],
        ["recovery / direct run",
         f"{elastic['overhead_ratio']:.2f}x"],
        ["failure path deterministic", elastic["deterministic"]],
    ]
    lines = ["Fault tolerance & elasticity (4 real ranks)", ""]
    lines += table(["metric", "value"], rows)
    lines.append("")
    lines += [
        f"  seed {e['seed']}: {e['plan']}"
        + (f" -> recovered at {e['recovered_world']}"
           if e["recovered_world"] else "")
        for e in matrix["scenarios"]
    ]
    save_report("faults", lines)

    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    assert acceptance["passed"], f"fault acceptance failed: {acceptance}"


if __name__ == "__main__":
    main()
