"""Figure 1: fine-grained overlap of MatMul with AllReduce.

Paper: "Speedup of co-optimized overlapping over sequential MatMul and
AllReduce (for model parallel GPT-2 Model input matrix of [B×1024, 768]
and weights of [768, 3072]) on 16 Tesla V100 GPUs" — 1.33x–1.36x,
hiding more than 80% of the MatMul time.
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.cluster import Cluster
from repro.core import FP16, RANK, AllReduce, Execute, MatMul, Sliced, Tensor, world
from repro.core.transforms import Schedule
from repro.perf import ProgramCostModel

PAPER_SPEEDUPS = {8: 1.34, 16: 1.36, 32: 1.35, 64: 1.33}
BATCHES = (8, 16, 32, 64)

#: GEMM efficiency for these skinny-K shapes (calibrated; cuBLAS runs
#: [Bx1024,768]x[768,3072] well below peak).
GEMM_EFFICIENCY = 0.80


def _program(batch: int):
    W = world(16)
    m, k, n = batch * 1024, 768, 3072
    a = Tensor(FP16, (m, k * 16), Sliced(1), W, RANK, name="a")
    w = Tensor(FP16, (k * 16, n), Sliced(0), W, RANK, name="w")
    layer = MatMul(a, w, name="layer")
    s = AllReduce("+", layer, name="sum")
    return Execute("mm_ar", [a, w], [s]), layer, s


def run_figure1():
    """Regenerate Figure 1: (batch -> dict of measurements)."""
    cluster = Cluster(1)
    results = {}
    for batch in BATCHES:
        prog, _, _ = _program(batch)
        pcm = ProgramCostModel(cluster, gemm_efficiency=GEMM_EFFICIENCY)
        parts = pcm.kernel_breakdown(prog)
        t_seq = pcm.time(prog)
        prog2, layer2, s2 = _program(batch)
        sched = Schedule(prog2)
        sched.overlap(layer2, s2)
        t_ovl = ProgramCostModel(
            cluster, gemm_efficiency=GEMM_EFFICIENCY
        ).time(sched)
        hidden = 1.0 - (t_ovl - parts["sum"]) / parts["layer"]
        results[batch] = dict(
            matmul_ms=parts["layer"] * 1e3,
            allreduce_ms=parts["sum"] * 1e3,
            sequential_ms=t_seq * 1e3,
            overlapped_ms=t_ovl * 1e3,
            speedup=t_seq / t_ovl,
            matmul_hidden=hidden,
        )
    return results


def report(results) -> str:
    rows = [
        [
            f"B={b}",
            f"{r['matmul_ms']:.3f}",
            f"{r['allreduce_ms']:.3f}",
            f"{r['sequential_ms']:.3f}",
            f"{r['overlapped_ms']:.3f}",
            f"{r['speedup']:.2f}x",
            f"{PAPER_SPEEDUPS[b]:.2f}x",
            f"{r['matmul_hidden']:.0%}",
        ]
        for b, r in results.items()
    ]
    lines = ["Figure 1 — overlap of MatMul + AllReduce (16 V100s)", ""]
    lines += table(
        ["batch", "MM ms", "AR ms", "seq ms", "overlap ms",
         "speedup", "paper", "MM hidden"],
        rows,
    )
    return save_report("figure1", lines)


class TestFigure1:
    @pytest.fixture(scope="class")
    def results(self):
        return run_figure1()

    def test_speedup_in_paper_band(self, results):
        # paper: 1.33x–1.36x; accept the same neighbourhood
        for b, r in results.items():
            assert 1.2 <= r["speedup"] <= 1.65, (b, r["speedup"])

    def test_hides_more_than_80_percent_of_matmul(self, results):
        for r in results.values():
            assert r["matmul_hidden"] > 0.8

    def test_allreduce_dominates_matmul(self, results):
        # the regime the paper's figure shows (AR the larger segment)
        for r in results.values():
            assert r["allreduce_ms"] > r["matmul_ms"]

    def test_report(self, results):
        assert "Figure 1" in report(results)


def test_benchmark_figure1(benchmark):
    benchmark.pedantic(run_figure1, rounds=1, iterations=1)
