"""Figure 12: pipeline parallelism, GPT-3 175B scale (S=2048, H=12288).

Paper (speedups over Megatron-LM's AR + compute + full-size P2P):

* AR-C-P2P-AG (sliced P2P + fused compute):  4.16x–4.49x
* GShard-Eq (RS-C-P2P-AG):                   7.06x–7.19x
* CoCoNet ol(RS, fuse(C-P2P), AG):          11.75x–12.21x

"The speedups are because: (i) sliced P2P reduces cross node
communication volume, (ii) fusing communication and computation
operations improves memory bandwidth utilization, and (iii) overlapping
communication using different connections (NVLink within node and
InfiniBand across nodes) improves network bandwidth utilization."
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.cluster import Cluster
from repro.perf import ProgramCostModel
from repro.workloads.pipeline import PipelineWorkload

SEQ, HIDDEN = 2048, 12288
BATCHES = (2, 4, 6, 8)
PAPER = {
    "AR-C-P2P-AG": (4.16, 4.49),
    "GShard-Eq": (7.06, 7.19),
    "CoCoNet": (11.75, 12.21),
}
SCHEDULES = {
    "MegatronLM": "schedule_megatron",
    "AR-C-P2P-AG": "schedule_ar_c_p2p_ag",
    "GShard-Eq": "schedule_gshard",
    "CoCoNet": "schedule_coconet",
}


def run_figure12():
    cluster = Cluster(2)  # two pipeline groups of one DGX-2 each
    results = {}
    for batch in BATCHES:
        times = {}
        for name, builder in SCHEDULES.items():
            wl = PipelineWorkload.build(
                batch, SEQ, HIDDEN, world_size=32, num_groups=2
            )
            sched = getattr(wl, builder)()
            times[name] = ProgramCostModel(cluster).time(sched)
        results[batch] = times
    return results


def report(results) -> str:
    rows = []
    for batch, times in results.items():
        base = times["MegatronLM"]
        rows.append(
            [
                f"B={batch}",
                f"{base * 1e3:.2f}",
                f"{base / times['AR-C-P2P-AG']:.2f}x",
                f"{base / times['GShard-Eq']:.2f}x",
                f"{base / times['CoCoNet']:.2f}x",
            ]
        )
    lines = [
        "Figure 12 — pipeline parallelism, GPT-3 (S=2048, H=12288), "
        "2 pipeline groups of 16 V100s",
        "paper speedups over Megatron-LM: AR-C-P2P-AG 4.16-4.49x, "
        "GShard-Eq 7.06-7.19x, CoCoNet 11.75-12.21x",
        "",
    ]
    lines += table(
        ["batch", "Megatron ms", "AR-C-P2P-AG", "GShard-Eq", "CoCoNet"], rows
    )
    return save_report("figure12", lines)


@pytest.fixture(scope="module")
def results():
    return run_figure12()


class TestFigure12:
    def test_ordering_matches_paper(self, results):
        for times in results.values():
            assert (
                times["MegatronLM"]
                > times["AR-C-P2P-AG"]
                > times["GShard-Eq"]
                > times["CoCoNet"]
            )

    def test_sliced_p2p_gives_multiple_x(self, results):
        # slicing the P2P divides cross-node volume by the group size
        for times in results.values():
            s = times["MegatronLM"] / times["AR-C-P2P-AG"]
            assert 3.0 <= s <= 6.0

    def test_gshard_band(self, results):
        for times in results.values():
            s = times["MegatronLM"] / times["GShard-Eq"]
            assert 5.0 <= s <= 9.0

    def test_coconet_order_of_magnitude(self, results):
        for times in results.values():
            s = times["MegatronLM"] / times["CoCoNet"]
            assert 9.0 <= s <= 15.0

    def test_coconet_vs_gshard(self, results):
        # §6.3.1: "1.66x–1.72x faster than GShard"
        for times in results.values():
            s = times["GShard-Eq"] / times["CoCoNet"]
            assert 1.3 <= s <= 2.1

    def test_report(self, results):
        assert "Figure 12" in report(results)


def test_benchmark_figure12(benchmark):
    benchmark.pedantic(run_figure12, rounds=1, iterations=1)
