"""Table 3: lines of code and autotuner time.

Paper: generated CUDA for each schedule is far larger than the CoCoNet
program (e.g. Adam: 16-220 generated lines vs 12-18 DSL lines; the
overlapped model-parallel schedule is ~2k lines), and the autotuner
explores each workload's schedule space in ~9-12 seconds.

We measure the same three quantities for the reproduction: generated
Python-kernel lines (the CUDA stand-in), DSL program+schedule lines,
and autotuner wall-clock (our candidates are costed by the DES rather
than executed on GPUs, so tuning takes milliseconds — both numbers are
reported).
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.cluster import Cluster
from repro.core.autotuner import Autotuner
from repro.core.codegen import CodeGenerator
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.pipeline import PipelineWorkload

PAPER = {
    "AR-Adam": (16, 12), "RS-Adam-AG": (24, 16), "fuse(RS-Adam-AG)": (150, 17),
    "AR-LAMB": (80, 15), "RS-LAMB-AG": (140, 17), "fuse(RS-LAMB-AG)": (220, 18),
    "MM-AR-C": (20, 10), "MM-RS-C-AG": (140, 13),
    "ol(MM,fuse(RS-C-AG))": (2000, 14),
    "AR-P2P-C-AG": (20, 10), "RS-P2P-C-AG": (140, 13),
    "ol(RS,fuse(P2P-C),AG)": (2000, 14),
}
PAPER_AUTOTUNER_SECONDS = {"adam": 9, "lamb": 10, "model": 12, "pipeline": 11}


def _measure(schedules):
    rows = []
    for name, sched in schedules.items():
        gen = CodeGenerator().generate(sched)
        rows.append((name, gen.loc(), sched.dsl_line_count()))
    return rows


def run_table3():
    out = {}
    out["adam"] = _measure(AdamWorkload.build(2**20, 256).schedules())
    out["lamb"] = _measure(LambWorkload.build(2**20, 256).schedules())
    att = AttentionWorkload.build(8, 1024, 3072, 16)
    out["model"] = _measure(
        {
            "MM-AR-C": att.schedule_mm_ar_c(),
            "MM-RS-C-AG": AttentionWorkload.build(
                8, 1024, 3072, 16
            ).schedule_gshard(),
            "ol(MM,fuse(RS-C-AG))": AttentionWorkload.build(
                8, 1024, 3072, 16
            ).schedule_coconet(),
        }
    )
    pipe = lambda: PipelineWorkload.build(  # noqa: E731
        2, 2048, 12288, world_size=32, num_groups=2
    )
    out["pipeline"] = _measure(
        {
            "AR-P2P-C-AG": pipe().schedule_ar_c_p2p_ag(),
            "RS-P2P-C-AG": pipe().schedule_gshard(),
            "ol(RS,fuse(P2P-C),AG)": pipe().schedule_coconet(),
        }
    )
    # autotuner wall-clock per workload family
    tune_times = {
        "adam": Autotuner(Cluster(16)).tune(
            AdamWorkload.build(2**20, 256).program
        ).elapsed_seconds,
        "lamb": Autotuner(Cluster(16)).tune(
            LambWorkload.build(2**20, 256).program
        ).elapsed_seconds,
        "model": Autotuner(Cluster(1)).tune(
            AttentionWorkload.build(8, 1024, 3072, 16).program
        ).elapsed_seconds,
        "pipeline": Autotuner(Cluster(2)).tune(
            PipelineWorkload.build(
                2, 2048, 12288, world_size=32, num_groups=2
            ).program
        ).elapsed_seconds,
    }
    return out, tune_times


def report(measured, tune_times) -> str:
    rows = []
    for family, entries in measured.items():
        for name, gen_loc, dsl_loc in entries:
            paper_gen, paper_dsl = PAPER.get(name, ("-", "-"))
            rows.append(
                [family, name, gen_loc, dsl_loc, paper_gen, paper_dsl]
            )
    lines = ["Table 3 — generated vs DSL lines of code", ""]
    lines += table(
        ["family", "schedule", "generated LoC", "DSL LoC",
         "paper CUDA LoC", "paper DSL LoC"],
        rows,
    )
    lines.append("")
    lines.append("autotuner wall-clock (ours: DES-costed candidates):")
    for family, t in tune_times.items():
        lines.append(
            f"  {family:10s} {t * 1e3:8.1f} ms   "
            f"(paper: {PAPER_AUTOTUNER_SECONDS[family]} s, real kernels)"
        )
    return save_report("table3", lines)


@pytest.fixture(scope="module")
def measured():
    return run_table3()


class TestTable3:
    def test_generated_exceeds_dsl_everywhere(self, measured):
        # the central claim: a few DSL lines expand to much more code
        rows, _ = measured
        for entries in rows.values():
            for name, gen_loc, dsl_loc in entries:
                assert gen_loc > dsl_loc, name

    def test_fused_generates_more_than_unfused(self, measured):
        rows, _ = measured
        adam = {name: g for name, g, _ in rows["adam"]}
        assert adam["fuse(RS-Adam-AG)"] > adam["AR-Adam"]

    def test_lamb_larger_than_adam(self, measured):
        rows, _ = measured
        adam = {name: g for name, g, _ in rows["adam"]}
        lamb = {name: g for name, g, _ in rows["lamb"]}
        assert lamb["fuse(RS-LAMB-AG)"] > adam["fuse(RS-Adam-AG)"]

    def test_overlap_is_largest_model_parallel_kernel(self, measured):
        rows, _ = measured
        model = {name: g for name, g, _ in rows["model"]}
        assert model["ol(MM,fuse(RS-C-AG))"] == max(model.values())

    def test_dsl_programs_stay_small(self, measured):
        # our printer emits one line per elementary op, so DSL counts
        # run a little above the paper's compound-expression counts
        rows, _ = measured
        for entries in rows.values():
            for name, _, dsl_loc in entries:
                assert dsl_loc <= 50, name

    def test_autotuner_fast(self, measured):
        _, tune_times = measured
        for family, t in tune_times.items():
            assert t < 30.0, family  # paper: seconds; ours: far less

    def test_report(self, measured):
        rows, tune_times = measured
        assert "Table 3" in report(rows, tune_times)


def test_benchmark_table3(benchmark):
    benchmark.pedantic(run_table3, rounds=1, iterations=1)
