"""Integration results: §6.1.2, §6.2.2 end-to-end numbers.

* §6.2.2 — "CoCoNet improved inference times of BERT 3.9B parameter
  model by 1.51x and GPT-2 8.3B parameter model by 1.48x" after
  integrating the overlap schedule into Megatron-LM. We model a full
  transformer layer (QKV + attention-out GEMMs, the two epilogue
  AllReduces, MLP GEMMs) and replace both epilogues with the
  ol(MM, fuse(RS-C-AG)) schedule.

* §6.1.2 — the BERT training speedups are covered cell by cell in
  bench_table4; here we additionally report the end-to-end per-sample
  throughput ratio at the models' best batch sizes.
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.baselines import ALL_STRATEGIES, FUSED_ADAM
from repro.cluster import Cluster
from repro.perf import ProgramCostModel
from repro.workloads.attention import AttentionWorkload
from repro.workloads.models import BERT_1_2B, BERT_3_9B, ModelConfig
from repro.cluster.gpu import TESLA_V100

PAPER_INFERENCE = {"BERT 3.9B": 1.51, "GPT-2 8.3B": 1.48}
TENSOR_PARALLEL = 16
GEMM_EFFICIENCY = 0.80

#: inference configurations of §6.2.2
INFER_MODELS = {
    "BERT 3.9B": dict(hidden=2560, seq=512, batch=8),
    "GPT-2 8.3B": dict(hidden=3072, seq=1024, batch=8),
}


def _epilogue_times(hidden, seq, batch, expansion, cluster):
    """(megatron, coconet) times of one epilogue (Figure 3's ops)."""
    out = {}
    for name, builder in (
        ("megatron", "schedule_megatron"),
        ("coconet", "schedule_coconet"),
    ):
        wl = AttentionWorkload.build(
            batch, seq, hidden, TENSOR_PARALLEL, expansion=expansion
        )
        sched = getattr(wl, builder)()
        out[name] = ProgramCostModel(
            cluster, gemm_efficiency=GEMM_EFFICIENCY
        ).time(sched)
    return out["megatron"], out["coconet"]


def _other_layer_compute(hidden, seq, batch, gpu):
    """GEMMs not inside the two epilogues: QKV projection, the
    attention score/context matmuls, and the h->4h MLP GEMM."""
    tokens = batch * seq
    flops = (
        2 * tokens * hidden * 3 * hidden  # QKV
        + 2 * 2 * tokens * seq * hidden   # scores + context
        + 2 * tokens * hidden * 4 * hidden  # h -> 4h
    ) / TENSOR_PARALLEL
    t = flops / (gpu.fp16_tflops * 1e12 * GEMM_EFFICIENCY)
    return t + 3 * gpu.kernel_launch_overhead


def run_inference_integration():
    cluster = Cluster(1)
    results = {}
    for name, cfg in INFER_MODELS.items():
        h, s, b = cfg["hidden"], cfg["seq"], cfg["batch"]
        attn_meg, attn_cc = _epilogue_times(h, s, b, 1, cluster)
        mlp_meg, mlp_cc = _epilogue_times(h, s, b, 4, cluster)
        rest = _other_layer_compute(h, s, b, TESLA_V100)
        megatron = rest + attn_meg + mlp_meg
        coconet = rest + attn_cc + mlp_cc
        results[name] = dict(
            megatron_ms=megatron * 1e3,
            coconet_ms=coconet * 1e3,
            speedup=megatron / coconet,
            paper=PAPER_INFERENCE[name],
        )
    return results


def run_training_integration():
    cluster = Cluster(16)
    results = {}
    for model in (BERT_1_2B, BERT_3_9B):
        tputs = {}
        for s in ALL_STRATEGIES(FUSED_ADAM):
            tputs[s.name] = s.throughput(model, cluster, cap=32)
        results[model.name] = tputs
    return results


def report(infer, train) -> str:
    rows = [
        [
            name,
            f"{r['megatron_ms']:.2f}",
            f"{r['coconet_ms']:.2f}",
            f"{r['speedup']:.2f}x",
            f"{r['paper']:.2f}x",
        ]
        for name, r in infer.items()
    ]
    lines = [
        "Integration — model-parallel inference, per transformer layer "
        "(§6.2.2)",
        "",
    ]
    lines += table(
        ["model", "Megatron ms/layer", "CoCoNet ms/layer", "speedup",
         "paper"],
        rows,
    )
    lines.append("")
    lines.append("Integration — BERT training samples/s per strategy "
                 "(§6.1.2):")
    for model, tputs in train.items():
        parts = ", ".join(
            f"{k}: {v:.1f}" if v else f"{k}: OOM"
            for k, v in tputs.items()
        )
        lines.append(f"  {model}: {parts}")
    return save_report("integration", lines)


@pytest.fixture(scope="module")
def infer():
    return run_inference_integration()


@pytest.fixture(scope="module")
def train():
    return run_training_integration()


class TestInferenceIntegration:
    def test_speedups_in_paper_neighbourhood(self, infer):
        # paper: 1.51x (BERT 3.9B), 1.48x (GPT-2 8.3B)
        for name, r in infer.items():
            assert 1.25 <= r["speedup"] <= 1.8, (name, r["speedup"])

    def test_both_models_improve(self, infer):
        for r in infer.values():
            assert r["coconet_ms"] < r["megatron_ms"]

    def test_layer_times_plausible_magnitude(self, infer):
        for r in infer.values():
            assert 0.3 < r["megatron_ms"] < 30


class TestTrainingIntegration:
    def test_coconet_best_or_tied_at_scale(self, train):
        for model, tputs in train.items():
            valid = {k: v for k, v in tputs.items() if v is not None}
            best = max(valid.values())
            assert valid["CoCoNet"] >= 0.99 * best, model

    def test_baselines_oom_at_3_9b(self, train):
        t = train["BERT 3.9B"]
        assert t["NV BERT"] is None and t["PyTorch DDP"] is None
        assert t["CoCoNet"] is not None

    def test_report(self, infer, train):
        assert "Integration" in report(infer, train)


def test_benchmark_integration(benchmark):
    benchmark.pedantic(run_inference_integration, rounds=1, iterations=1)
