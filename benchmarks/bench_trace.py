"""Observability layer: tracer overhead, predicted-vs-measured, export.

Four measurements over :mod:`repro.observe`:

* **overhead** — ``Executor.run_lowered`` on the MoE overlapped chunk
  pipeline with the tracer off vs on, interleaved repeats, min-of-N.
  Recording a span costs two clock reads and one dataclass, so the
  ratio must stay within the ≤5% budget that makes leaving tracing
  enabled tenable (asserted here and gated by the CI baseline; the
  measurement always uses the large MoE shape so the cap is not a
  coin flip against sub-millisecond scheduler jitter).
* **predicted vs measured** — the DES cost model's per-kernel timeline
  joined against the measured lowered-interpreter trace
  (:mod:`repro.observe.compare`), reporting the measured/predicted
  latency ratio per collective kind: AllReduce on the Adam optimizer,
  AllToAll on MoE. Ratios are *recorded*, not gated — absolute values
  are machine-dependent; the gate asserts they exist.
* **SPMD trace artifact** — the MoE overlapped schedule at 4 real
  ranks with per-rank ring tracing; the merged events are exported to
  ``moe_overlapped.trace.json`` (open at https://ui.perfetto.dev) and
  schema-validated.
* **tuner metrics** — candidates explored / dedup hits / cost-model
  memo hit rate from an attention autotune, through the same registry.

Emits ``BENCH_trace.json`` at the repo root::

    PYTHONPATH=src:. python benchmarks/bench_trace.py            # full
    PYTHONPATH=src:. python benchmarks/bench_trace.py --smoke    # CI

The regression gate (``benchmarks/check_regression.py``) compares the
recorded overhead ratio and trace validity against
``benchmarks/baselines/BENCH_trace.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import save_report, table  # noqa: E402

from repro.cluster import Cluster  # noqa: E402
from repro.core import FP32, ops  # noqa: E402
from repro.core.autotuner import Autotuner  # noqa: E402
from repro.core.transforms import Schedule  # noqa: E402
from repro.observe import (  # noqa: E402
    MetricsRegistry,
    Tracer,
    compare_timelines,
    validate,
    write_trace,
)
from repro.perf.program_cost import ProgramCostModel  # noqa: E402
from repro.runtime import Executor  # noqa: E402
from repro.workloads.adam import AdamWorkload  # noqa: E402
from repro.workloads.attention import AttentionWorkload  # noqa: E402
from repro.workloads.moe import MoEWorkload  # noqa: E402

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_trace.json")
TRACE_PATH = os.path.join(_ROOT, "moe_overlapped.trace.json")

#: tracer-on / tracer-off wall-clock cap (ISSUE 6 acceptance: ≤5%)
OVERHEAD_CAP = 1.05


def moe_setup(rng: np.random.RandomState, capacity: int, model_dim: int,
              ffn_dim: int):
    wl = MoEWorkload.build(capacity, model_dim, ffn_dim, world_size=4,
                           dtype=FP32)
    E = 4
    inputs = {
        "x": rng.randn(4, E, capacity, model_dim),
        "w1": rng.randn(4, model_dim, ffn_dim),
        "w2": rng.randn(4, ffn_dim, model_dim),
    }
    return wl, inputs


def measure_overhead(sched, inputs, repeats: int) -> Dict:
    """Interleaved tracer-off/on run_lowered timings.

    Warms up first (BLAS thread pools, allocator) and alternates which
    variant runs first each repeat, so position-in-loop bias cancels
    instead of being attributed to the tracer. The reported ratio is
    the *median of per-pair on/off ratios*: pairing adjacent runs
    cancels slow machine drift, and the median bounds the influence of
    any single descheduled run — min-of-N proved ±3% flaky here.
    """
    ex = Executor()
    off: List[float] = []
    on: List[float] = []
    events = 0
    for _ in range(3):
        ex.run_lowered(sched, inputs, allow_downcast=True)
    for i in range(repeats):
        tracer = Tracer()

        def run_off() -> None:
            t0 = time.perf_counter()
            ex.run_lowered(sched, inputs, allow_downcast=True)
            off.append(time.perf_counter() - t0)

        def run_on() -> None:
            t0 = time.perf_counter()
            ex.run_lowered(sched, inputs, allow_downcast=True,
                           tracer=tracer)
            on.append(time.perf_counter() - t0)

        for step in ((run_off, run_on) if i % 2 else (run_on, run_off)):
            step()
        events = len(tracer.events)
    pair_ratios = sorted(o / f for o, f in zip(on, off))
    return {
        "repeats": repeats,
        "off_s": min(off),
        "on_s": min(on),
        "ratio": pair_ratios[len(pair_ratios) // 2],
        "events_per_run": events,
    }


def collective_kinds(lowered) -> Dict[str, str]:
    """kernel name → collective kind, for every communication kernel."""
    kinds: Dict[str, str] = {}
    for k in lowered.plan.kernels:
        for e in k.exprs:
            if isinstance(e, ops.CommOp):
                kinds[k.name] = e.comm_kind
                break
    return kinds


def predicted_vs_measured(name, sched, inputs) -> Dict:
    """Join the DES timeline against a measured lowered-run trace."""
    tracer = Tracer()
    Executor().run_lowered(sched, inputs, allow_downcast=True, tracer=tracer)
    model = ProgramCostModel(Cluster(1))
    timeline, _tasks = model.timeline(sched)
    cmp = compare_timelines(timeline, tracer.events)

    kinds = collective_kinds(
        sched.lowered() if isinstance(sched, Schedule) else sched
    )
    by_kind: Dict[str, Dict[str, float]] = {}
    for row in cmp.rows:
        kind = kinds.get(row.name)
        if kind is None:
            continue
        agg = by_kind.setdefault(kind, {"predicted": 0.0, "measured": 0.0})
        agg["predicted"] += row.predicted
        agg["measured"] += row.measured
    collectives = {
        kind: agg["measured"] / agg["predicted"]
        for kind, agg in by_kind.items()
        if agg["predicted"] > 0
    }
    return {
        "aligned_ops": len(cmp.rows),
        "collective_ratios": collectives,
        "table": cmp.describe(),
    }


def spmd_trace(sched, inputs) -> Dict:
    """Trace a 4-rank real-process run; export + validate the artifact."""
    tracer = Tracer()
    Executor().run_spmd(sched, inputs, allow_downcast=True, tracer=tracer)
    doc = write_trace(tracer.events, TRACE_PATH)
    problems = validate(doc)
    ranks = sorted(
        {e.pid for e in tracer.events if str(getattr(e, "pid", "")).
         startswith("rank")}
    )
    cats = sorted(
        {e.cat for e in tracer.events if getattr(e, "cat", "")}
    )
    return {
        "num_events": len(tracer.events),
        "ranks_present": len(ranks),
        "categories": cats,
        "bytes_published": {
            k: v for k, v in tracer.metrics.snapshot().items()
            if k.endswith("bytes_published")
        },
        "trace_valid": not problems,
        "validate_problems": problems[:5],
        "trace_path": os.path.basename(TRACE_PATH),
    }


def tuner_metrics() -> Dict:
    metrics = MetricsRegistry()
    wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32, dropout_seed=6)
    Autotuner(Cluster(1), metrics=metrics).tune(wl.program)
    snap = metrics.snapshot()
    return {
        "candidates": snap.get("tuner.candidates", 0),
        "pruned": snap.get("tuner.pruned", 0),
        "dedup_hits": snap.get("tuner.dedup_hits", 0),
        "memo_hit_rate": snap.get("cost_model.memo_hit_rate", 0.0),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small shapes and fewer repeats (CI)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    repeats = args.repeats or (7 if args.smoke else 15)
    rng = np.random.RandomState(0x59D0)

    shape = (3, 6, 8) if args.smoke else (64, 128, 256)
    moe, moe_inputs = moe_setup(rng, *shape)
    overlapped = moe.schedule_overlapped()

    # Overhead is always measured at the large shape: at the smoke
    # shape a run is <1 ms and scheduler jitter swamps the ~10-event
    # tracer cost, which would make the ≤5% cap a coin flip.
    if args.smoke:
        ovh_moe, ovh_inputs = moe_setup(rng, 64, 128, 256)
        ovh_sched = ovh_moe.schedule_overlapped()
    else:
        ovh_sched, ovh_inputs = overlapped, moe_inputs

    adam = AdamWorkload.build(64 if args.smoke else 1024, 4)
    adam_inputs = dict(
        g=rng.randn(4, adam.program.inputs[1].shape[0]) * 0.1,
        p=rng.randn(adam.program.inputs[1].shape[0]),
        m=rng.randn(adam.program.inputs[1].shape[0]) * 0.01,
        v=np.abs(rng.randn(adam.program.inputs[1].shape[0])) * 0.01,
        lr=0.01,
        t=3.0,
    )

    overhead = measure_overhead(ovh_sched, ovh_inputs, repeats)
    pvm = {
        "adam_allreduce": predicted_vs_measured(
            "adam", Schedule(adam.program), adam_inputs
        ),
        "moe_overlapped": predicted_vs_measured(
            "moe", overlapped, moe_inputs
        ),
    }
    spmd = spmd_trace(overlapped, moe_inputs)
    tuner = tuner_metrics()

    ratios_present = bool(
        "allreduce" in pvm["adam_allreduce"]["collective_ratios"]
        and "alltoall" in pvm["moe_overlapped"]["collective_ratios"]
    )
    report = {
        "benchmark": "trace",
        "mode": "smoke" if args.smoke else "full",
        "overhead": overhead,
        "predicted_vs_measured": {
            k: {kk: vv for kk, vv in v.items() if kk != "table"}
            for k, v in pvm.items()
        },
        "spmd": spmd,
        "tuner": tuner,
        "acceptance": {
            "overhead_ratio": overhead["ratio"],
            "overhead_cap": OVERHEAD_CAP,
            "trace_valid": spmd["trace_valid"],
            "ratios_present": ratios_present,
            "passed": bool(
                spmd["trace_valid"]
                and ratios_present
                and overhead["ratio"] <= OVERHEAD_CAP
            ),
        },
    }

    rows = [
        ["tracer off (min)", f"{overhead['off_s'] * 1e3:.2f} ms"],
        ["tracer on (min)", f"{overhead['on_s'] * 1e3:.2f} ms"],
        ["overhead ratio", f"{overhead['ratio']:.4f}"],
        ["events per run", overhead["events_per_run"]],
        ["spmd events (4 ranks)", spmd["num_events"]],
        ["trace schema valid", spmd["trace_valid"]],
        ["tuner candidates", int(tuner["candidates"])],
        ["memo hit rate", f"{tuner['memo_hit_rate']:.3f}"],
    ]
    for name, entry in pvm.items():
        for kind, ratio in entry["collective_ratios"].items():
            rows.append(
                [f"{name}: {kind} measured/predicted", f"{ratio:.2f}x"]
            )

    lines = ["Observability: tracer overhead & cost-model validation", ""]
    lines += table(["metric", "value"], rows)
    lines.append("")
    lines.append("predicted vs measured (MoE overlapped):")
    lines.append(pvm["moe_overlapped"]["table"])
    save_report("trace", lines)

    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")
    print(f"wrote {TRACE_PATH}")

    assert spmd["trace_valid"], (
        f"exported trace failed validation: {spmd['validate_problems']}"
    )
    assert ratios_present, "missing allreduce/alltoall latency ratios"
    assert overhead["ratio"] <= OVERHEAD_CAP, (
        f"tracer overhead {overhead['ratio']:.4f} exceeds the "
        f"{OVERHEAD_CAP}x cap"
    )


if __name__ == "__main__":
    main()
