"""CI benchmark-regression gate.

Compares fresh ``BENCH_*.json`` reports (written by the benchmark
scripts at the repo root) against committed reference numbers under
``benchmarks/baselines/`` and **fails** when a guarded metric regresses
beyond the tolerance — turning the benchmark artifacts from "uploaded
and forgotten" into a required CI check.

Baseline schema (one file per benchmark, same filename)::

    {
      "tolerance": 0.10,                  # optional, default 0.10
      "checks": [
        {"path": "equal_outputs", "equals": true},
        {"path": "acceptance.adam_gpt3_64ranks_speedup", "min": 3.0},
        {"path": "median_overhead", "max": 1.25},
        {"path": "sizes.adam_bytes", "max_bytes": 16384},
        {"path_num": "a.b", "path_den": "a.c", "min": 1.0}   # ratio
      ]
    }

Semantics: ``min`` floors pass when ``fresh >= min * (1 - tolerance)``;
``max`` caps pass when ``fresh <= max * (1 + tolerance)``; ``equals``
must match exactly (no tolerance — used for booleans like
``equal_outputs``); ``max_bytes`` is a *hard* cap with no tolerance —
byte counts are deterministic, so any growth past the cap is a real
size regression, not noise. Ratio checks divide two paths of the fresh report
before applying the floor/cap.

Usage::

    python benchmarks/check_regression.py BENCH_runtime.json ...
    python benchmarks/check_regression.py --update-baselines BENCH_*.json

``--update-baselines`` rewrites each baseline's floors/caps from the
fresh report (floors at ``fresh * 0.8``, caps at ``fresh * 1.2``) for
intentional performance shifts; the updated files are meant to be
committed with the change that moved the numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baselines")
DEFAULT_TOLERANCE = 0.10
#: margins applied by --update-baselines: floors sit below and caps sit
#: above the freshly measured value by this factor
UPDATE_FLOOR_MARGIN = 0.8
UPDATE_CAP_MARGIN = 1.2


class GateError(Exception):
    """A malformed baseline/report (distinct from a failed check)."""


def lookup(report: dict, path: str):
    """Resolve a dotted path in a nested report dict."""
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise GateError(f"path {path!r} not found in the fresh report")
        node = node[part]
    return node


def _check_value(check: dict, report: dict):
    if "path" in check:
        return lookup(report, check["path"]), check["path"]
    if "path_num" in check and "path_den" in check:
        num = lookup(report, check["path_num"])
        den = lookup(report, check["path_den"])
        if not den:
            raise GateError(f"ratio denominator {check['path_den']!r} is 0")
        label = f"{check['path_num']} / {check['path_den']}"
        return float(num) / float(den), label
    raise GateError(f"check needs 'path' or 'path_num'+'path_den': {check}")


def run_checks(
    report: dict, baseline: dict, tolerance_override: "float | None" = None
) -> Tuple[List[str], List[str]]:
    """Evaluate one baseline file; returns (passed, failed) messages."""
    tol = (
        tolerance_override
        if tolerance_override is not None
        else baseline.get("tolerance", DEFAULT_TOLERANCE)
    )
    passed: List[str] = []
    failed: List[str] = []
    checks = baseline.get("checks", [])
    if not checks:
        raise GateError("baseline has no checks")
    for check in checks:
        try:
            value, label = _check_value(check, report)
        except GateError as exc:
            failed.append(str(exc))
            continue
        if "equals" in check:
            want = check["equals"]
            if value == want:
                passed.append(f"{label} == {want!r}")
            else:
                failed.append(f"{label}: expected {want!r}, got {value!r}")
        elif "min" in check:
            floor = check["min"] * (1.0 - tol)
            if float(value) >= floor:
                passed.append(
                    f"{label} = {float(value):.4g} >= "
                    f"{check['min']:.4g}·(1-{tol:.0%})"
                )
            else:
                failed.append(
                    f"{label} REGRESSED: {float(value):.4g} < floor "
                    f"{check['min']:.4g}·(1-{tol:.0%}) = {floor:.4g}"
                )
        elif "max" in check:
            cap = check["max"] * (1.0 + tol)
            if float(value) <= cap:
                passed.append(
                    f"{label} = {float(value):.4g} <= "
                    f"{check['max']:.4g}·(1+{tol:.0%})"
                )
            else:
                failed.append(
                    f"{label} REGRESSED: {float(value):.4g} > cap "
                    f"{check['max']:.4g}·(1+{tol:.0%}) = {cap:.4g}"
                )
        elif "max_bytes" in check:
            # hard cap, deliberately tolerance-free: serialized sizes
            # are deterministic, so exceeding the cap by even one byte
            # means the format grew
            cap = int(check["max_bytes"])
            if int(value) <= cap:
                passed.append(f"{label} = {int(value)} B <= {cap} B")
            else:
                failed.append(
                    f"{label} GREW: {int(value)} B > hard cap {cap} B"
                )
        else:
            failed.append(f"check has no min/max/equals: {check}")
    return passed, failed


def update_baseline(baseline: dict, report: dict) -> dict:
    """Refresh floors/caps from a fresh report (intentional shifts).

    Only tunable ``min``/``max`` values are rewritten. ``max_bytes``
    caps snap to the exact fresh byte count (sizes are deterministic,
    so no margin is needed). ``equals`` checks guard correctness
    invariants (``equal_outputs`` and friends) — refreshing them from
    a report whose numerics just broke would silently disable the
    guard forever, so they are left untouched.
    """
    out = dict(baseline)
    new_checks = []
    for check in baseline.get("checks", []):
        check = dict(check)
        value, _ = _check_value(check, report)
        if "min" in check:
            check["min"] = round(float(value) * UPDATE_FLOOR_MARGIN, 4)
        elif "max" in check:
            check["max"] = round(float(value) * UPDATE_CAP_MARGIN, 4)
        elif "max_bytes" in check:
            check["max_bytes"] = int(value)
        new_checks.append(check)
    out["checks"] = new_checks
    return out


def gate(
    fresh_paths: List[str],
    baseline_dir: str = BASELINE_DIR,
    tolerance: "float | None" = None,
    update: bool = False,
) -> Dict[str, Tuple[List[str], List[str]]]:
    """Gate every fresh report; returns per-file (passed, failed)."""
    results: Dict[str, Tuple[List[str], List[str]]] = {}
    for fresh_path in fresh_paths:
        name = os.path.basename(fresh_path)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(fresh_path):
            results[name] = ([], [f"fresh report {fresh_path} is missing "
                                  f"(did the benchmark run?)"])
            continue
        if not os.path.exists(baseline_path):
            results[name] = ([], [
                f"no committed baseline at {baseline_path} — commit one "
                f"(schema in this file's docstring) to gate this benchmark"
            ])
            continue
        try:
            with open(fresh_path) as f:
                report = json.load(f)
        except ValueError as exc:
            results[name] = ([], [f"fresh report {fresh_path} is not "
                                  f"valid JSON: {exc}"])
            continue
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
        except ValueError as exc:
            results[name] = ([], [f"baseline {baseline_path} is not "
                                  f"valid JSON: {exc}"])
            continue
        if update:
            try:
                updated = update_baseline(baseline, report)
            except GateError as exc:
                results[name] = ([], [f"cannot refresh baseline: {exc}"])
                continue
            with open(baseline_path, "w") as f:
                json.dump(updated, f, indent=2, sort_keys=True)
                f.write("\n")
            results[name] = ([f"baseline refreshed from {fresh_path}"], [])
            continue
        try:
            results[name] = run_checks(report, baseline, tolerance)
        except GateError as exc:
            results[name] = ([], [str(exc)])
    return results


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "reports", nargs="+",
        help="fresh BENCH_*.json files (paths; matched to baselines "
             "by filename)",
    )
    parser.add_argument(
        "--baselines", default=BASELINE_DIR,
        help="directory of committed reference numbers",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override every baseline's tolerance (e.g. 0.15)",
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="rewrite baselines from the fresh reports instead of gating",
    )
    args = parser.parse_args(argv)

    results = gate(
        args.reports,
        baseline_dir=args.baselines,
        tolerance=args.tolerance,
        update=args.update_baselines,
    )
    any_failed = False
    for name in sorted(results):
        passed, failed = results[name]
        status = "FAIL" if failed else "ok"
        print(f"[{status}] {name}")
        for msg in passed:
            print(f"    pass: {msg}")
        for msg in failed:
            print(f"    FAIL: {msg}")
        any_failed |= bool(failed)
    if any_failed:
        print("\nbenchmark regression gate FAILED", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
