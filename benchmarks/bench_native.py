"""Native compiled kernels vs the Python SPMD interpreter.

``CodeGenerator(target="native")`` renders each lowered kernel's
elementwise chain into one fused C loop (GEMMs dispatch to BLAS) and
binds the compiled library into the same per-rank OS processes the
``spmd`` target uses — same :mod:`repro.runtime.spmd` communicator,
same ChunkLoop overlap orchestrator, only the per-rank compute swapped.
This benchmark measures that swap on the paper's two flagship
workloads:

* **adam** — the fused data-parallel Adam step (Table 2's ``AR-Adam``
  family) at GPT-3 layer scale: a long elementwise chain over many
  megabytes per rank, where the Python interpreter pays one float64
  numpy pass per expression and the C loop pays one fused pass total.
  Elementwise-only, so outputs must be **bit-identical** to
  ``Executor.run_lowered``.
* **moe** — the overlapped GShard MoE schedule (Figure 10 family):
  AllToAll + expert GEMMs under the ring chunk loop. GEMM-bearing, so
  outputs are held to the documented BLAS tolerance (fp16: rtol 1e-2,
  atol 1e-3) — BLAS reassociates the K-dim sum.

Timing uses ``result.spmd_seconds`` (rank-body seconds, barrier-synced,
excluding process spawn). The native side is warmed first: the cold
iteration — which includes the one-time kernel compile — is recorded
separately as ``cold_compile_s``, and the warm run is asserted to
perform **zero** compiles via the per-rank trace-ring compile events.

Emits ``BENCH_native.json`` at the repo root::

    PYTHONPATH=src:. python benchmarks/bench_native.py            # full
    PYTHONPATH=src:. python benchmarks/bench_native.py --smoke    # CI

Full mode asserts the ``NATIVE_SPEEDUP_FLOOR`` on both workloads;
smoke mode asserts correctness and the warm-cache property only — the
regression gate (``benchmarks/check_regression.py``) compares the
recorded numbers against ``benchmarks/baselines/BENCH_native.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import save_report, table  # noqa: E402

from repro.cli import _seeded_inputs  # noqa: E402
from repro.core.codegen import native  # noqa: E402
from repro.observe import Tracer  # noqa: E402
from repro.runtime import Executor  # noqa: E402
from repro.workloads.adam import AdamWorkload  # noqa: E402
from repro.workloads.moe import MoEWorkload  # noqa: E402

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_native.json")

#: full-mode acceptance: compiled kernels must at least halve the
#: rank-body time of the Python interpreter on both workloads
NATIVE_SPEEDUP_FLOOR = 2.0


def _outputs_close(a, b, exact: bool) -> bool:
    for name in a.output_names:
        x = a.output(name)
        y = b.output(name)
        if exact:
            if not np.array_equal(x, y):
                return False
        elif not np.allclose(
            y.astype(np.float64), x.astype(np.float64),
            rtol=1e-2, atol=1e-3,
        ):
            return False
    for name, x in getattr(a, "_tensor_states", {}).items():
        y = b._tensor_states[name]
        if exact:
            if not np.array_equal(x, y):
                return False
        elif not np.allclose(
            y.astype(np.float64), x.astype(np.float64),
            rtol=1e-2, atol=1e-3,
        ):
            return False
    return True


def run_config(
    name: str,
    sched,
    inputs,
    repeats: int,
    exact: bool,
    timeout: float,
) -> Dict:
    ex = Executor()
    oracle = ex.run_lowered(sched, inputs, allow_downcast=True)

    entry: Dict = {"repeats": repeats, "bit_identical_contract": exact}

    # cold native run: includes the one-time kernel compile (cache is
    # content-addressed, so a warm machine may make this a disk hit)
    t0 = time.perf_counter()
    r = ex.run_spmd(
        sched, inputs, allow_downcast=True, timeout=timeout,
        codegen_target="native",
    )
    entry["cold_compile_s"] = time.perf_counter() - t0
    correct = _outputs_close(oracle, r, exact)

    # warm native runs: trace rings must show zero compiles
    tracer = Tracer()
    native_times = []
    for _ in range(repeats):
        r = ex.run_spmd(
            sched, inputs, allow_downcast=True, timeout=timeout,
            codegen_target="native", tracer=tracer,
        )
        native_times.append(r.spmd_seconds)
        correct &= _outputs_close(oracle, r, exact)
    snap = tracer.metrics.snapshot()
    warm_compiles = sum(
        v for k, v in snap.items() if k.endswith(".kernel_compiles")
    )
    cache_hits = sum(
        v for k, v in snap.items() if k.endswith(".kernel_cache_hits")
    )

    python_times = []
    for _ in range(repeats):
        r = ex.run_spmd(
            sched, inputs, allow_downcast=True, timeout=timeout,
        )
        python_times.append(r.spmd_seconds)
        correct &= _outputs_close(oracle, r, True)

    entry["python_spmd_s"] = statistics.median(python_times)
    entry["native_s"] = statistics.median(native_times)
    entry["speedup"] = entry["python_spmd_s"] / entry["native_s"]
    entry["correct"] = bool(correct)
    entry["warm_compiles"] = int(warm_compiles)
    entry["warm_cache_hits"] = int(cache_hits)
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small shapes, no perf floor (CI)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    repeats = args.repeats or (2 if args.smoke else 3)

    if not native.available():
        print("no C compiler on PATH; native benchmark skipped")
        sys.exit(0)
    print(f"toolchain: {native.toolchain_report()}")

    if args.smoke:
        adam_elems, adam_ranks = 1 << 16, 2
        moe_cap, moe_dim, moe_ffn, moe_ranks = 64, 128, 256, 2
        timeout = 240.0
    else:
        # a GPT-3-family layer-scale gradient: 2^23 fp16 elements is
        # the order of one 2048-wide MLP block's parameters, large
        # enough that per-expression numpy passes dominate the Python
        # interpreter while a 2-rank run stays in laptop territory
        adam_elems, adam_ranks = 1 << 23, 2
        moe_cap, moe_dim, moe_ffn, moe_ranks = 512, 512, 2048, 2
        timeout = 600.0

    # AR-Adam keeps the optimizer update as a LocalCompute kernel (one
    # long elementwise chain), the shape the fused C loop accelerates;
    # the fused-collective Adam variant runs its math inside the
    # communicator and is covered for correctness by tests/test_native.py
    adam = AdamWorkload.build(adam_elems, adam_ranks)
    moe = MoEWorkload.build(
        capacity=moe_cap, model_dim=moe_dim, ffn_dim=moe_ffn,
        world_size=moe_ranks,
    )
    configs = {
        "adam_ar_opt": dict(
            sched=adam.schedule_ar_opt(),
            inputs=_seeded_inputs(adam.program, seed=0),
            exact=True,
        ),
        "moe_overlapped": dict(
            sched=moe.schedule_overlapped(),
            inputs=_seeded_inputs(moe.program, seed=0),
            exact=False,
        ),
    }
    shapes = {
        "adam_ar_opt": f"{adam_elems} elems x {adam_ranks} ranks",
        "moe_overlapped": (
            f"cap={moe_cap} dm={moe_dim} ff={moe_ffn} x {moe_ranks} ranks"
        ),
    }

    report = {
        "benchmark": "native",
        "mode": "smoke" if args.smoke else "full",
        "toolchain": native.toolchain_report(),
        "configs": {},
    }
    rows = []
    for name, cfg in configs.items():
        entry = run_config(name, repeats=repeats, timeout=timeout, **cfg)
        entry["shape"] = shapes[name]
        report["configs"][name] = entry
        rows.append(
            [
                name,
                shapes[name],
                f"{entry['python_spmd_s'] * 1e3:.1f} ms",
                f"{entry['native_s'] * 1e3:.1f} ms",
                f"{entry['speedup']:.2f}x",
                entry["correct"],
                entry["warm_compiles"],
            ]
        )

    correct_all = all(e["correct"] for e in report["configs"].values())
    warm_compiles = sum(
        e["warm_compiles"] for e in report["configs"].values()
    )
    min_speedup = min(e["speedup"] for e in report["configs"].values())
    report["correct"] = correct_all
    report["warm_compiles"] = warm_compiles
    report["acceptance"] = {
        "min_speedup": min_speedup,
        "floor": NATIVE_SPEEDUP_FLOOR,
        "warm_cache_zero_compiles": warm_compiles == 0,
        "passed": bool(
            correct_all
            and warm_compiles == 0
            and (args.smoke or min_speedup >= NATIVE_SPEEDUP_FLOOR)
        ),
    }

    lines = ["Native compiled kernels vs Python SPMD interpreter", ""]
    lines += table(
        ["config", "shape", "python", "native", "speedup", "correct",
         "warm compiles"],
        rows,
    )
    lines.append("")
    lines.append(
        f"correct: {correct_all}; warm-cache compiles: {warm_compiles}; "
        f"min speedup {min_speedup:.2f}x "
        f"(floor {NATIVE_SPEEDUP_FLOOR}x, full mode only)"
    )
    save_report("native", lines)

    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    assert correct_all, "native outputs diverged from run_lowered"
    assert warm_compiles == 0, (
        f"warm-cache runs performed {warm_compiles} compiles; "
        "the content-addressed cache must make re-runs compile-free"
    )
    if not args.smoke:
        assert min_speedup >= NATIVE_SPEEDUP_FLOOR, (
            f"native speedup {min_speedup:.2f}x fell below the "
            f"{NATIVE_SPEEDUP_FLOOR}x floor"
        )


if __name__ == "__main__":
    main()
