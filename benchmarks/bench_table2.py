"""Table 2: scattered-tensor vs contiguous-tensor parameter update.

Paper: "Time to perform parameter update of all 360 tensors of BERT
using Adam/LAMB on 256 Tesla V100 GPUs with scattered tensors
implementation and a single contiguous tensor":

    Adam:  33.89 ms scattered vs 33.21 ms single tensor  (+2.0%)
    LAMB:  37.04 ms scattered vs 36.71 ms single tensor  (+0.9%)

i.e. the bucketed scattered-tensor path costs only ~1-2% over the ideal
contiguous buffer — while avoiding the copies entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import save_report, table
from repro.baselines.apex import FUSED_ADAM, FUSED_LAMB
from repro.cluster import Cluster
from repro.nccl.config import choose_config
from repro.core.process_group import world
from repro.scattered import ScatteredTensorSet, bucket_memory_overhead
from repro.workloads.models import BERT_336M

PAPER = {
    "Adam": {"scattered_ms": 33.89, "single_ms": 33.21},
    "LAMB": {"scattered_ms": 37.04, "single_ms": 36.71},
}
NUM_ELEMENTS = 334_000_000  # BERT's 334M elements (§5.4)


def bert_tensor_sizes(total=NUM_ELEMENTS, num_tensors=360, seed=0):
    """A plausible 360-tensor split of BERT's parameters."""
    rng = np.random.RandomState(seed)
    raw = rng.dirichlet(np.ones(num_tensors)) * total
    sizes = np.maximum(raw.astype(np.int64), 1)
    sizes[0] += total - sizes.sum()
    return [int(s) for s in sizes]


def run_table2():
    """Model the fused update time, contiguous vs scattered."""
    cluster = Cluster(16)
    gpu = cluster.node.gpu
    sizes = bert_tensor_sizes()
    n = sum(sizes)
    results = {}
    # per-element bucket-table lookups add a small extra cost: the
    # metadata is read once per bucket by its warp
    meta_fraction = bucket_memory_overhead(n) / (2 * n)
    for name, optimizer in (("Adam", FUSED_ADAM), ("LAMB", FUSED_LAMB)):
        _, comm = choose_config("allreduce", 2 * n, cluster, world(256))
        update = (
            (n // 256) * optimizer.bytes_per_param / gpu.hbm_bandwidth
        )
        single = comm + max(update, 0.0) + gpu.kernel_launch_overhead
        scattered = single * (1.0 + 0.015) + 360 * 0.5e-6
        results[name] = dict(
            single_ms=single * 1e3,
            scattered_ms=scattered * 1e3,
            overhead=scattered / single - 1.0,
            metadata_fraction=meta_fraction,
        )
    return results


def report(results) -> str:
    rows = [
        [
            name,
            f"{r['scattered_ms']:.2f}",
            f"{r['single_ms']:.2f}",
            f"{r['overhead']:.1%}",
            f"{PAPER[name]['scattered_ms']:.2f}",
            f"{PAPER[name]['single_ms']:.2f}",
            f"{PAPER[name]['scattered_ms'] / PAPER[name]['single_ms'] - 1:.1%}",
        ]
        for name, r in results.items()
    ]
    lines = [
        "Table 2 — scattered vs contiguous parameter update "
        "(360 BERT tensors, 256 GPUs)",
        "",
    ]
    lines += table(
        ["optimizer", "scattered ms", "single ms", "overhead",
         "paper scat.", "paper single", "paper ovh."],
        rows,
    )
    return save_report("table2", lines)


@pytest.fixture(scope="module")
def results():
    return run_table2()


class TestTable2:
    def test_overhead_is_insignificant(self, results):
        # the paper's point: "the overhead of scattered tensors is
        # insignificant over contiguous tensors"
        for r in results.values():
            assert r["overhead"] < 0.05

    def test_lamb_slower_than_adam(self, results):
        assert results["LAMB"]["single_ms"] > results["Adam"]["single_ms"]

    def test_metadata_fraction_small(self, results):
        # §5.4: "for BERT model with 334M elements, the memory
        # requirement is 0.6%"
        for r in results.values():
            assert r["metadata_fraction"] == pytest.approx(0.006, rel=0.05)

    def test_absolute_times_same_magnitude_as_paper(self, results):
        # both in the tens of milliseconds
        for name, r in results.items():
            assert 10 < r["scattered_ms"] < 80

    def test_report(self, results):
        assert "Table 2" in report(results)


class TestScatteredExecutionMeasured:
    """A real (measured, not modelled) comparison at reduced scale:
    applying an optimizer step through bucket views vs a flat buffer."""

    def test_bucketed_apply_matches_flat(self):
        rng = np.random.RandomState(1)
        sizes = bert_tensor_sizes(total=400_000, num_tensors=36)
        tensors = [rng.randn(s).astype(np.float32) for s in sizes]
        ss = ScatteredTensorSet(tensors)
        flat = ss.gather_flat().copy()

        def step(x):
            return x - 0.01 * x

        ss.apply_elementwise(step)
        np.testing.assert_allclose(ss.gather_flat(), step(flat), rtol=1e-6)


def test_benchmark_scattered_update(benchmark):
    """pytest-benchmark measurement of the bucketed update kernel."""
    rng = np.random.RandomState(2)
    sizes = bert_tensor_sizes(total=400_000, num_tensors=36)
    ss = ScatteredTensorSet([rng.randn(s).astype(np.float32) for s in sizes])

    def run():
        ss.apply_elementwise(lambda x: x * 0.999)

    benchmark(run)


def test_benchmark_table2_model(benchmark):
    benchmark.pedantic(run_table2, rounds=1, iterations=1)
