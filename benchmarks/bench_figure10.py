"""Figure 10: data-parallel parameter update, Adam and LAMB, 256 GPUs.

Paper: speedups over AllReduce+FusedAdam / AllReduce+FusedLAMB across
tensor sizes 2^10..2^30 (mixed precision):

* AR-Opt wins at small sizes (it skips Apex's preprocessing);
* fuse(RS-Opt-AG) wins at large sizes and approaches UB (the cost of
  the AllReduce alone);
* GShard-Eq sits below the fused schedule ("multiple kernel calls ...
  significantly hurt performance" at small sizes);
* overall bands: 1.2x–1.7x (Adam), 1.35x–2.0x (LAMB); crossover around
  2^17; "There is no schedule that performs best for all sizes."
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.baselines.apex import FUSED_ADAM, FUSED_LAMB
from repro.cluster import Cluster
from repro.core.process_group import world
from repro.nccl.config import choose_config
from repro.perf import ProgramCostModel
from repro.workloads.adam import AdamWorkload
from repro.workloads.lamb import LambWorkload

WORLD_SIZE = 256
SIZES = [2**e for e in range(10, 31, 2)]

#: paper's qualitative reference points (speedup over the baseline)
PAPER = {
    "adam": {"band": (1.2, 1.7), "crossover_exp": 17},
    "lamb": {"band": (1.35, 2.0), "crossover_exp": 17},
}


def _baseline_time(num_elements, cluster, optimizer):
    """AllReduce over fp16 gradients + Apex fused optimizer."""
    _, ar = choose_config(
        "allreduce", 2 * num_elements, cluster, world(WORLD_SIZE)
    )
    gpu = cluster.node.gpu
    return (
        ar
        + gpu.kernel_launch_overhead
        + optimizer.kernel_time(num_elements, gpu)
    )


def _ub_time(num_elements, cluster):
    """Upper bound: the AllReduce alone (no computation at all)."""
    _, ar = choose_config(
        "allreduce", 2 * num_elements, cluster, world(WORLD_SIZE)
    )
    return ar + cluster.node.gpu.kernel_launch_overhead


def run_optimizer_sweep(workload_cls, optimizer, cluster=None):
    """Speedups over the baseline per size and schedule."""
    cluster = cluster or Cluster(16)
    rows = {}
    for n in SIZES:
        wl = workload_cls.build(n, WORLD_SIZE)
        base = _baseline_time(n, cluster, optimizer)
        entry = {"UB": base / _ub_time(n, cluster)}
        for name, sched in wl.schedules().items():
            pcm = ProgramCostModel(cluster)
            entry[name] = base / pcm.time(sched)
        rows[n] = entry
    return rows


def crossover_exponent(rows, ar_name, fused_name):
    """First size (log2) where the fused schedule beats AR-Opt."""
    for n in SIZES:
        if rows[n][fused_name] > rows[n][ar_name]:
            return n.bit_length() - 1
    return None


def report(kind: str, rows) -> str:
    names = list(next(iter(rows.values())).keys())
    body = [
        [f"2^{n.bit_length() - 1}"] + [f"{rows[n][c]:.2f}x" for c in names]
        for n in SIZES
    ]
    lines = [
        f"Figure 10{'a' if kind == 'adam' else 'b'} — mixed-precision "
        f"{kind.upper()} on {WORLD_SIZE} GPUs",
        f"paper: best-schedule band {PAPER[kind]['band'][0]}x–"
        f"{PAPER[kind]['band'][1]}x, crossover ≈ 2^{PAPER[kind]['crossover_exp']}",
        "",
    ]
    lines += table(["elements"] + names, body)
    return save_report(f"figure10_{kind}", lines)


@pytest.fixture(scope="module")
def adam_rows():
    return run_optimizer_sweep(AdamWorkload, FUSED_ADAM)


@pytest.fixture(scope="module")
def lamb_rows():
    return run_optimizer_sweep(LambWorkload, FUSED_LAMB)


class TestFigure10Adam:
    def test_ar_opt_wins_small(self, adam_rows):
        # "AR-Adam runs best till 2^16"
        small = adam_rows[2**10]
        assert small["AR-Adam"] > small["fuse(RS-Adam-AG)"]
        assert small["AR-Adam"] > small["RS-Adam-AG"]

    def test_fused_wins_large(self, adam_rows):
        # "fuse(RS-Adam-AG) runs best after 2^17"
        big = adam_rows[2**30]
        assert big["fuse(RS-Adam-AG)"] >= big["RS-Adam-AG"]
        assert big["fuse(RS-Adam-AG)"] > big["AR-Adam"]

    def test_fused_approaches_ub_at_large(self, adam_rows):
        big = adam_rows[2**30]
        assert big["fuse(RS-Adam-AG)"] > 0.9 * big["UB"]

    def test_speedup_band(self, adam_rows):
        lo, hi = PAPER["adam"]["band"]
        best_large = adam_rows[2**30]["fuse(RS-Adam-AG)"]
        assert lo * 0.85 <= best_large <= hi * 1.25

    def test_crossover_location(self, adam_rows):
        exp = crossover_exponent(adam_rows, "AR-Adam", "fuse(RS-Adam-AG)")
        assert exp is not None and 14 <= exp <= 22

    def test_gshard_hurt_at_small_sizes(self, adam_rows):
        # "multiple kernel calls required for GShard-Eq schedules
        # significantly hurt performance"
        small = adam_rows[2**10]
        assert small["RS-Adam-AG"] < 0.7

    def test_no_schedule_best_everywhere(self, adam_rows):
        winners = {
            max(
                (v, k) for k, v in adam_rows[n].items() if k != "UB"
            )[1]
            for n in SIZES
        }
        assert len(winners) >= 2

    def test_report(self, adam_rows):
        assert "Figure 10a" in report("adam", adam_rows)


class TestFigure10Lamb:
    def test_lamb_band_exceeds_adam(self, adam_rows, lamb_rows):
        # LAMB moves more optimizer state, so distributing it wins more
        assert (
            lamb_rows[2**30]["fuse(RS-LAMB-AG)"]
            > adam_rows[2**30]["fuse(RS-Adam-AG)"]
        )

    def test_lamb_speedup_band(self, lamb_rows):
        lo, hi = PAPER["lamb"]["band"]
        best_large = lamb_rows[2**30]["fuse(RS-LAMB-AG)"]
        assert lo * 0.85 <= best_large <= hi * 1.25

    def test_ar_lamb_wins_small(self, lamb_rows):
        small = lamb_rows[2**10]
        assert small["AR-LAMB"] > small["fuse(RS-LAMB-AG)"]

    def test_crossover_location(self, lamb_rows):
        exp = crossover_exponent(lamb_rows, "AR-LAMB", "fuse(RS-LAMB-AG)")
        assert exp is not None and 14 <= exp <= 22

    def test_report(self, lamb_rows):
        assert "Figure 10b" in report("lamb", lamb_rows)


class TestFigure10Float32:
    """"The results for Float 32 are qualitatively similar" (§6.1.1)."""

    def test_fp32_shape_matches_fp16(self):
        from repro.core import FP32

        cluster = Cluster(16)
        rows = {}
        for n in (2**12, 2**28):
            wl = AdamWorkload.build(n, WORLD_SIZE, grad_dtype=FP32)
            base = _baseline_time(n, cluster, FUSED_ADAM)
            rows[n] = {
                name: base / ProgramCostModel(cluster).time(sched)
                for name, sched in wl.schedules().items()
            }
        # same qualitative structure: AR-Opt wins small, fused wins large
        assert rows[2**12]["AR-Adam"] > rows[2**12]["fuse(RS-Adam-AG)"]
        assert rows[2**28]["fuse(RS-Adam-AG)"] > rows[2**28]["AR-Adam"]


def test_benchmark_figure10_adam(benchmark):
    benchmark.pedantic(
        lambda: run_optimizer_sweep(AdamWorkload, FUSED_ADAM),
        rounds=1, iterations=1,
    )
