"""Real-process SPMD execution: baseline vs overlapped wall-clock.

Every other benchmark in this repository measures the *simulated* cost
model or single-process interpreters. This one launches real OS
processes — one per rank over the shared-memory communicator of
:mod:`repro.runtime.spmd` — and measures wall-clock for a
MatMul→AllReduce→bias workload under a simulated wire
(``wire_s_per_mb`` charges transfer time per published megabyte):

* **baseline** — the unscheduled program: a library GEMM kernel, then a
  whole-buffer AllReduce, then the bias add;
* **overlapped** — ``overlap(mm, ar)``: the lowered ring chunk loop.
  Each rank's producer stream thread releases the GEMM output
  chunk-by-chunk in ring order while the consuming AllReduce ingests
  and reduces every chunk as soon as all ranks published it, hiding
  the reduction (and the ingest copies) behind the remaining chunks'
  wire time.

Both schedules are asserted bit-identical to ``Executor.run_lowered``
before timing — the speedup is never paid for with changed numerics.

Emits ``BENCH_spmd.json`` at the repo root::

    PYTHONPATH=src:. python benchmarks/bench_spmd.py            # full
    PYTHONPATH=src:. python benchmarks/bench_spmd.py --smoke    # CI

Full mode asserts a modest overlap floor (the win is the pipelined
reduction, a fraction of total step time); smoke mode runs 2 and 4
ranks at small shapes and asserts equal outputs only — the regression
gate (``benchmarks/check_regression.py``) compares the recorded
speedups against ``benchmarks/baselines/BENCH_spmd.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import save_report, table  # noqa: E402

from repro.core import (  # noqa: E402
    FP32,
    RANK,
    AllReduce,
    Binary,
    Execute,
    MatMul,
    Replicated,
    Sliced,
    Tensor,
    world,
)
from repro.core.transforms import Schedule  # noqa: E402
from repro.runtime import Executor  # noqa: E402

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_spmd.json")

#: full-mode acceptance: the overlapped schedule must beat the baseline
OVERLAP_SPEEDUP_FLOOR = 1.02


def build(num_ranks: int, batch: int, seq: int, hidden: int):
    """MatMul → AllReduce → bias add (the Figure 9 overlap pair)."""
    W = world(num_ranks)
    w = Tensor(FP32, (hidden, hidden), Sliced(0), W, RANK, name="w")
    x = Tensor(FP32, (batch, seq, hidden), Sliced(2), W, RANK, name="x")
    b = Tensor(FP32, (hidden,), Replicated, W, name="b")
    mm = MatMul(x, w, name="mm")
    ar = AllReduce("+", mm, name="ar")
    out = Binary("+", ar, b, name="out")
    prog = Execute("spmd_bench", [w, x, b], [out])
    return prog, mm, ar


def schedules(num_ranks: int, batch: int, seq: int, hidden: int):
    prog, mm, ar = build(num_ranks, batch, seq, hidden)
    baseline = Schedule(prog)
    overlapped = Schedule(prog)
    overlapped.overlap(mm, ar)
    loops = overlapped.lowered().chunk_loops()
    assert loops and loops[0].ring, "overlap(mm, ar) must lower to a ring loop"
    return prog, {"baseline": baseline, "overlapped": overlapped}


def run_config(
    name: str,
    num_ranks: int,
    batch: int,
    seq: int,
    hidden: int,
    wire_s_per_mb: float,
    repeats: int,
    rng: np.random.RandomState,
) -> Dict:
    prog, scheds = schedules(num_ranks, batch, seq, hidden)
    inputs = {
        "w": rng.randn(hidden, hidden),
        "x": rng.randn(batch, seq, hidden),
        "b": rng.randn(hidden),
    }
    ex = Executor()
    oracle = ex.run_lowered(scheds["overlapped"], inputs, allow_downcast=True)

    entry: Dict = {
        "num_ranks": num_ranks,
        "shape": [batch, seq, hidden],
        "wire_s_per_mb": wire_s_per_mb,
        "repeats": repeats,
    }
    equal = True
    for sname, sched in scheds.items():
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = ex.run_spmd(
                sched, inputs, allow_downcast=True,
                wire_s_per_mb=wire_s_per_mb,
            )
            wall = time.perf_counter() - t0
            # rank-body seconds exclude process spawn (barrier-synced)
            times.append(result.spmd_seconds)
            equal &= np.array_equal(
                result.output("out"), oracle.output("out")
            )
        entry[f"{sname}_s"] = statistics.median(times)
        entry[f"{sname}_wall_s"] = wall
    entry["speedup"] = entry["baseline_s"] / entry["overlapped_s"]
    entry["equal_outputs"] = equal
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small shapes, 2 and 4 ranks, no perf floor (CI)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    repeats = args.repeats or (2 if args.smoke else 3)
    rng = np.random.RandomState(0x59D0)

    if args.smoke:
        configs = {
            "mm_ar_2ranks": dict(
                num_ranks=2, batch=8, seq=64, hidden=256,
                wire_s_per_mb=0.2,
            ),
            "mm_ar_4ranks": dict(
                num_ranks=4, batch=8, seq=64, hidden=256,
                wire_s_per_mb=0.2,
            ),
        }
    else:
        configs = {
            "mm_ar_4ranks": dict(
                num_ranks=4, batch=16, seq=128, hidden=512,
                wire_s_per_mb=0.03,
            ),
            "mm_ar_8ranks": dict(
                num_ranks=8, batch=16, seq=128, hidden=512,
                wire_s_per_mb=0.03,
            ),
        }

    report = {
        "benchmark": "spmd",
        "mode": "smoke" if args.smoke else "full",
        "configs": {},
    }
    rows = []
    for name, cfg in configs.items():
        entry = run_config(name, repeats=repeats, rng=rng, **cfg)
        report["configs"][name] = entry
        rows.append(
            [
                name,
                cfg["num_ranks"],
                f"{entry['baseline_s'] * 1e3:.1f} ms",
                f"{entry['overlapped_s'] * 1e3:.1f} ms",
                f"{entry['speedup']:.3f}x",
                entry["equal_outputs"],
            ]
        )

    equal_all = all(e["equal_outputs"] for e in report["configs"].values())
    min_speedup = min(e["speedup"] for e in report["configs"].values())
    report["equal_outputs"] = equal_all
    report["acceptance"] = {
        "min_speedup": min_speedup,
        "floor": OVERLAP_SPEEDUP_FLOOR,
        "passed": bool(equal_all and min_speedup >= OVERLAP_SPEEDUP_FLOOR),
    }

    lines = ["SPMD real-process execution: baseline vs overlapped", ""]
    lines += table(
        ["config", "ranks", "baseline", "overlapped", "speedup", "equal"],
        rows,
    )
    lines.append("")
    lines.append(
        f"all outputs bit-identical to run_lowered: {equal_all}; "
        f"min overlap speedup {min_speedup:.3f}x "
        f"(floor {OVERLAP_SPEEDUP_FLOOR}x, full mode only)"
    )
    save_report("spmd", lines)

    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    assert equal_all, "SPMD outputs diverged from run_lowered"
    if not args.smoke:
        assert min_speedup >= OVERLAP_SPEEDUP_FLOOR, (
            f"overlap speedup {min_speedup:.3f}x fell below the "
            f"{OVERLAP_SPEEDUP_FLOOR}x floor"
        )


if __name__ == "__main__":
    main()
