"""Figure 11: model-parallel self-attention and MLP (GPT-2, 16 GPUs).

Paper (times normalized to Megatron-LM, i.e. speedups):

* MM-AR-C (fused pointwise):       1.05x–1.07x
* GShard-Eq (MM-RS-C-AG):          1.15x–1.29x
* CoCoNet ol(MM, fuse(RS-C-AG)):   1.42x–1.70x

for the self-attention epilogue ([B,S,H/16] x [H/16,H]) and the MLP
epilogue ([B,S,4H/16] x [4H/16,H]) with S=1024, H=3072, B ∈ {8, 16}.
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.cluster import Cluster
from repro.perf import ProgramCostModel
from repro.workloads.attention import AttentionWorkload

SEQ, HIDDEN = 1024, 3072
CASES = [
    ("self-attention", 8, 1), ("self-attention", 16, 1),
    ("MLP", 8, 4), ("MLP", 16, 4),
]
PAPER = {
    "MM-AR-C": (1.05, 1.07),
    "GShard-Eq": (1.15, 1.29),
    "CoCoNet": (1.42, 1.70),
}
GEMM_EFFICIENCY = 0.80


def run_figure11():
    cluster = Cluster(1)
    results = {}
    for label, batch, expansion in CASES:
        wl = AttentionWorkload.build(
            batch, SEQ, HIDDEN, 16, expansion=expansion
        )
        times = {}
        for name in ("MegatronLM", "MM-AR-C", "GShard-Eq", "CoCoNet"):
            wl2 = AttentionWorkload.build(
                batch, SEQ, HIDDEN, 16, expansion=expansion
            )
            sched = getattr(
                wl2,
                {
                    "MegatronLM": "schedule_megatron",
                    "MM-AR-C": "schedule_mm_ar_c",
                    "GShard-Eq": "schedule_gshard",
                    "CoCoNet": "schedule_coconet",
                }[name],
            )()
            pcm = ProgramCostModel(cluster, gemm_efficiency=GEMM_EFFICIENCY)
            times[name] = pcm.time(sched)
        results[(label, batch)] = times
    return results


def report(results) -> str:
    rows = []
    for (label, batch), times in results.items():
        base = times["MegatronLM"]
        rows.append(
            [
                f"{label} B={batch}",
                f"{base * 1e3:.2f}",
                f"{base / times['MM-AR-C']:.2f}x",
                f"{base / times['GShard-Eq']:.2f}x",
                f"{base / times['CoCoNet']:.2f}x",
            ]
        )
    lines = [
        "Figure 11 — model parallelism, GPT-2 (S=1024, H=3072), 16 V100s",
        "paper speedups over Megatron-LM: MM-AR-C 1.05-1.07x, "
        "GShard-Eq 1.15-1.29x, CoCoNet 1.42-1.70x",
        "",
    ]
    lines += table(
        ["workload", "Megatron ms", "MM-AR-C", "GShard-Eq", "CoCoNet"], rows
    )
    return save_report("figure11", lines)


@pytest.fixture(scope="module")
def results():
    return run_figure11()


class TestFigure11:
    def test_ordering_matches_paper(self, results):
        for times in results.values():
            assert (
                times["MegatronLM"]
                > times["MM-AR-C"]
                > times["GShard-Eq"]
                > times["CoCoNet"]
            )

    def test_mm_ar_c_band(self, results):
        for times in results.values():
            s = times["MegatronLM"] / times["MM-AR-C"]
            assert 1.02 <= s <= 1.25

    def test_gshard_band(self, results):
        for times in results.values():
            s = times["MegatronLM"] / times["GShard-Eq"]
            assert 1.08 <= s <= 1.45

    def test_coconet_band(self, results):
        for times in results.values():
            s = times["MegatronLM"] / times["CoCoNet"]
            assert 1.3 <= s <= 2.0

    def test_coconet_beats_gshard_by_overlap(self, results):
        # §6.2.1: 1.21x-1.34x over GShard-Eq (our overlap pipelines the
        # MLP's larger GEMM slightly more ideally; see EXPERIMENTS.md)
        for times in results.values():
            s = times["GShard-Eq"] / times["CoCoNet"]
            assert 1.1 <= s <= 1.6

    def test_report(self, results):
        assert "Figure 11" in report(results)


def test_benchmark_figure11(benchmark):
    benchmark.pedantic(run_figure11, rounds=1, iterations=1)
