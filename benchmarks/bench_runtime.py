"""Numeric runtime performance: rank-major vectorized vs reference.

The numeric executor is the correctness oracle every transformation is
verified against, so its wall-clock bounds how large the equivalence
tests and end-to-end benchmarks can run. This benchmark measures the
rank-major vectorized backend (one stacked ``(num_ranks, *shape)`` array
per tensor, collectives as single numpy expressions, replicated math
computed once via stride-0 views) against ``Executor(reference=True)``,
the retained dict-of-ranks oracle, on each workload's original *and*
optimized schedules at 16–64 simulated ranks.

Every timed pair is also checked bit-identical: ``np.array_equal`` on
all program outputs and final tensor states.

Emits ``BENCH_runtime.json`` at the repo root. The acceptance bar: the
vectorized backend must be at least ``ADAM_SPEEDUP_FLOOR``x faster on
the GPT-3-scale Adam step at 64 ranks (replicated optimizer math that
the reference interprets once per rank, 64x over).

The same pass also measures the *lowered* interpreter
(``Executor.run_lowered``, which executes the shared
``repro.core.lower`` instruction stream — overlap groups chunk-by-chunk,
fused blocks as units) against the DFG interpreter on every schedule,
asserts bit-identical results, and emits ``BENCH_lowering.json`` with
the measured per-schedule overhead and the number of overlap groups that
actually executed at chunk granularity.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_runtime.py          # full
    PYTHONPATH=src:. python benchmarks/bench_runtime.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Callable, Dict, Tuple

import numpy as np

from benchmarks._common import save_report, table
from repro.core.tensor import Tensor
from repro.runtime import Executor
from repro.workloads.adam import AdamWorkload
from repro.workloads.attention import AttentionWorkload
from repro.workloads.lamb import LambWorkload
from repro.workloads.moe import MoEWorkload
from repro.workloads.pipeline import PipelineWorkload

#: acceptance bar: vectorized speedup on the GPT-3-scale Adam at 64 ranks
ADAM_SPEEDUP_FLOOR = 3.0

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_runtime.json")
LOWERING_JSON_PATH = os.path.join(_ROOT, "BENCH_lowering.json")


def _cast_inputs(program, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Pre-cast inputs to each tensor's dtype (placement stays silent)."""
    dtypes = {t.name: t.dtype.to_numpy() for t in program.inputs}
    return {
        name: np.asarray(value, dtype=dtypes[name])
        for name, value in inputs.items()
    }


def _optimizer_inputs(rng, n: int, N: int) -> Dict[str, np.ndarray]:
    return dict(
        g=rng.randn(n, N) * 0.1,
        p=rng.randn(N),
        m=rng.randn(N) * 0.01,
        v=np.abs(rng.randn(N)) * 0.01,
        lr=0.01,
        t=3.0,
    )


def workload_suite(smoke: bool) -> Dict[str, Tuple[Callable, Callable]]:
    """name -> (workload builder, input builder).

    The GPT-3-scale Adam entry keeps 64 ranks even in smoke mode (the
    rank count, not the element count, is what the vectorized backend
    amortizes); other workloads span 16–64 ranks.
    """
    if smoke:
        sizes = {
            "adam_gpt3_64ranks": (64, 2**16),
            "adam_16ranks": (16, 2**16),
            "lamb_16ranks": (16, 2**14),
            "attention_16ranks": (2, 64, 256, 16),
            "moe_16ranks": (8, 32, 128, 16),
            "pipeline_32ranks": (2, 32, 128, 32),
        }
    else:
        sizes = {
            # a GPT-3 layer-scale parameter bucket (hidden 12288): 2M
            # elements, the full 64-rank data-parallel group
            "adam_gpt3_64ranks": (64, 2**21),
            "adam_16ranks": (16, 2**20),
            "lamb_16ranks": (16, 2**18),
            "attention_16ranks": (4, 256, 1024, 16),
            "moe_16ranks": (16, 128, 512, 16),
            "pipeline_32ranks": (4, 128, 512, 32),
        }

    def adam(n, N):
        rng = np.random.RandomState(0xADA)
        return AdamWorkload.build(N, n), _optimizer_inputs(rng, n, N)

    def lamb(n, N):
        rng = np.random.RandomState(0x1A8)
        return LambWorkload.build(N, n), _optimizer_inputs(rng, n, N)

    def attention(batch, seq, hidden, n):
        rng = np.random.RandomState(0xA77)
        wl = AttentionWorkload.build(batch, seq, hidden, n)
        inputs = {
            "w": rng.randn(hidden, hidden),
            "b": rng.randn(hidden),
            "in": rng.randn(batch, seq, hidden),
            "r": rng.randn(batch, seq, hidden),
        }
        return wl, inputs

    def moe(C, M, F, n):
        rng = np.random.RandomState(0x30E)
        wl = MoEWorkload.build(C, M, F, world_size=n)
        inputs = {
            "x": rng.randn(n, n, C, M),
            "w1": rng.randn(n, M, F),
            "w2": rng.randn(n, F, M),
        }
        return wl, inputs

    def pipeline(batch, seq, hidden, n):
        rng = np.random.RandomState(0x919)
        wl = PipelineWorkload.build(batch, seq, hidden, world_size=n)
        inputs = {
            "in": rng.randn(n // 2, batch, seq, hidden),
            "b": rng.randn(hidden),
            "r": rng.randn(batch, seq, hidden),
        }
        return wl, inputs

    builders = {
        "adam_gpt3_64ranks": adam,
        "adam_16ranks": adam,
        "lamb_16ranks": lamb,
        "attention_16ranks": attention,
        "moe_16ranks": moe,
        "pipeline_32ranks": pipeline,
    }
    return {
        name: (lambda f=fn, a=sizes[name]: f(*a))
        for name, fn in builders.items()
    }


def _assert_equal_results(vec, ref, program, label: str) -> None:
    for name in vec.output_names:
        assert np.array_equal(vec.output(name), ref.output(name)), (
            f"{label}: output {name} differs between backends"
        )
    for t in program.inputs:
        if isinstance(t, Tensor):
            assert np.array_equal(
                vec.tensor_state(t.name), ref.tensor_state(t.name)
            ), f"{label}: state {t.name} differs between backends"


def _time_run(executor, program, inputs, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = executor.run(program, inputs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _time_lowered(executor, sched, inputs, repeats: int, trace=None):
    """Best-of-N lowered runs; the first collects the instruction trace
    (list appends are negligible next to the numpy work, and an extra
    untimed run at GPT-3 scale would cost seconds and gigabytes)."""
    best, result = float("inf"), None
    for i in range(repeats):
        t0 = time.perf_counter()
        result = executor.run_lowered(
            sched, inputs, trace=trace if i == 0 else None
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_workload(
    name: str, build: Callable, repeats: int, lowering: dict
) -> dict:
    from repro.core.transforms import Schedule

    wl, raw_inputs = build()
    schedules = {"original": Schedule(wl.program)}
    schedules.update(wl.schedules())
    entry = {
        "num_ranks": wl.program.inputs[0].group.world_size,
        "schedules": {},
    }
    low_entry: Dict[str, dict] = {}
    for sched_name, sched in schedules.items():
        program = sched.program
        inputs = _cast_inputs(program, raw_inputs)
        vec_s, vec = _time_run(Executor(), program, inputs, repeats)
        ref_s, ref = _time_run(
            Executor(reference=True), program, inputs, repeats
        )
        _assert_equal_results(vec, ref, program, f"{name}/{sched_name}")
        entry["schedules"][sched_name] = {
            "reference_s": ref_s,
            "vectorized_s": vec_s,
            "speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
        }
        # lowered interpreter: same inputs, plan-aware execution; must
        # stay bit-identical to the DFG interpretation
        trace: list = []
        low_s, low = _time_lowered(
            Executor(), sched, inputs, repeats, trace=trace
        )
        _assert_equal_results(
            low, vec, program, f"{name}/{sched_name} (lowered)"
        )
        chunk_events = sum(1 for ev in trace if ev[0] == "chunk")
        low_entry[sched_name] = {
            "dfg_s": vec_s,
            "lowered_s": low_s,
            "overhead": low_s / vec_s if vec_s > 0 else float("inf"),
            "chunk_events": chunk_events,
        }
    lowering[name] = low_entry
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI; same code paths and acceptance bar",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    repeats = args.repeats or (1 if args.smoke else 2)

    report = {
        "mode": "smoke" if args.smoke else "full",
        "equal_outputs": True,  # every pair below is array_equal-asserted
        "workloads": {},
    }
    lowering: Dict[str, dict] = {}
    rows = []
    for name, build in workload_suite(args.smoke).items():
        entry = run_workload(name, build, repeats, lowering)
        report["workloads"][name] = entry
        for sched_name, timing in entry["schedules"].items():
            rows.append([
                name,
                entry["num_ranks"],
                sched_name,
                f"{timing['reference_s'] * 1e3:.1f}",
                f"{timing['vectorized_s'] * 1e3:.1f}",
                f"{timing['speedup']:.2f}x",
            ])

    # The acceptance bar is the Adam *step* (the program as written,
    # Figure 6a): its replicated optimizer math is what the reference
    # backend interprets once per rank. The sliced GShard-style
    # schedules already distribute the math, so both backends do the
    # same total work there and their ratio tends to 1x by design.
    adam = report["workloads"]["adam_gpt3_64ranks"]["schedules"]
    adam_speedup = adam["original"]["speedup"]
    report["acceptance"] = {
        "adam_gpt3_64ranks_speedup": adam_speedup,
        "floor": ADAM_SPEEDUP_FLOOR,
        "passed": adam_speedup >= ADAM_SPEEDUP_FLOOR,
    }

    lines = table(
        ["workload", "ranks", "schedule", "reference ms",
         "vectorized ms", "speedup"],
        rows,
    )
    lines.append("")
    lines.append(
        f"GPT-3-scale Adam step @ 64 ranks: {adam_speedup:.2f}x "
        f"(floor {ADAM_SPEEDUP_FLOOR}x); all runs bit-identical "
        f"between backends"
    )
    save_report("bench_runtime", lines)
    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2)
    print(f"\nwrote {JSON_PATH}")

    # lowered-vs-DFG interpreter comparison (every pair above was
    # asserted bit-identical before timing)
    chunked_groups = sum(
        1
        for wl_entry in lowering.values()
        for timing in wl_entry.values()
        if timing["chunk_events"] > 0
    )
    overheads = [
        timing["overhead"]
        for wl_entry in lowering.values()
        for timing in wl_entry.values()
    ]
    lowering_report = {
        "mode": report["mode"],
        "equal_outputs": True,
        "workloads": lowering,
        "schedules_with_chunked_execution": chunked_groups,
        "median_overhead": sorted(overheads)[len(overheads) // 2],
        "max_overhead": max(overheads),
    }
    assert chunked_groups >= 1, (
        "no overlap schedule executed chunk-by-chunk under the lowered "
        "interpreter"
    )
    with open(LOWERING_JSON_PATH, "w") as f:
        json.dump(lowering_report, f, indent=2)
    print(
        f"lowered interpreter: median overhead "
        f"{lowering_report['median_overhead']:.2f}x vs the DFG "
        f"interpreter, {chunked_groups} schedules executed "
        f"chunk-by-chunk; all runs bit-identical"
    )
    print(f"wrote {LOWERING_JSON_PATH}")
    if not args.smoke:
        # equal-output assertions above run in both modes; the timing
        # floor only gates full runs (smoke's single repeat on tiny
        # arrays is too noisy for a hard CI wall-clock gate — same
        # convention as bench_tuner.py)
        assert adam_speedup >= ADAM_SPEEDUP_FLOOR, (
            f"vectorized runtime speedup {adam_speedup:.2f}x on the "
            f"GPT-3-scale Adam at 64 ranks is below the "
            f"{ADAM_SPEEDUP_FLOOR}x acceptance floor"
        )


if __name__ == "__main__":
    main()
