"""MoE expert-MLP over AllToAll: the new workload axis.

No figure of the paper covers Mixture-of-Experts — GShard is the
*baseline* the paper compares against — so this benchmark establishes
the reproduction's own reference numbers: simulated times of the
GShard-Eq / fused / overlapped schedules across capacities on the
default simulated cluster (one DGX-2 node, 16 GPUs, like §6.2's
model-parallel runs), plus the flat-vs-hierarchical AllToAll crossover
across nodes.

Emits ``BENCH_moe.json`` (schedule times in seconds per configuration,
and the autotuner's verdict) alongside the usual text report.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks._common import RESULTS_DIR, save_report, table
from repro.cluster import Cluster
from repro.core.autotuner import Autotuner
from repro.perf import ProgramCostModel
from repro.workloads.moe import MoEWorkload

WORLD_SIZE = 16          # one DGX-2 node: one expert per GPU
MODEL_DIM = 1024
FFN_DIM = 4096
CAPACITIES = [64, 256, 512, 1024, 2048]

#: where the machine-readable report lands (repo root, per the roadmap's
#: BENCH_* convention)
JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_moe.json",
)


def run_moe_sweep(cluster=None):
    """Simulated time per capacity and schedule, plus the tuner's pick."""
    cluster = cluster or Cluster(1)
    pcm = ProgramCostModel(cluster)
    rows = {}
    for cap in CAPACITIES:
        wl = MoEWorkload.build(cap, MODEL_DIM, FFN_DIM, WORLD_SIZE)
        rows[cap] = {
            name: pcm.time(sched) for name, sched in wl.schedules().items()
        }
    return rows


def tune_moe(capacity=512, cluster=None):
    """Autotuner run on one configuration; returns the TuneResult."""
    cluster = cluster or Cluster(1)
    wl = MoEWorkload.build(capacity, MODEL_DIM, FFN_DIM, WORLD_SIZE)
    return Autotuner(cluster).tune(wl.program)


def write_json(rows, tune_result) -> dict:
    payload = {
        "workload": "moe",
        "world_size": WORLD_SIZE,
        "model_dim": MODEL_DIM,
        "ffn_dim": FFN_DIM,
        "times_seconds": {
            str(cap): entry for cap, entry in rows.items()
        },
        "autotuner": {
            "best": tune_result.best.name,
            "best_time_seconds": tune_result.best.time,
            "candidates_explored": len(tune_result.candidates),
        },
    }
    with open(JSON_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload


def report(rows, tune_result) -> str:
    names = list(next(iter(rows.values())).keys())
    body = [
        [f"C={cap}"]
        + [f"{rows[cap][n] * 1e6:.1f} us" for n in names]
        + [f"{rows[cap]['GShard-Eq'] / rows[cap]['overlapped']:.2f}x"]
        for cap in CAPACITIES
    ]
    lines = [
        f"MoE expert MLP (E={WORLD_SIZE} experts, M={MODEL_DIM}, "
        f"F={FFN_DIM}) on 1x DGX-2",
        "dispatch-AllToAll -> expert GEMMs -> combine-AllToAll; speedup "
        "is overlapped over GShard-Eq",
        "",
    ]
    lines += table(["capacity"] + names + ["speedup"], body)
    lines += [
        "",
        f"autotuner best: {tune_result.best.name} "
        f"({tune_result.best.time * 1e6:.1f} us, "
        f"{len(tune_result.candidates)} schedules explored)",
    ]
    return save_report("moe", lines)


@pytest.fixture(scope="module")
def moe_rows():
    return run_moe_sweep()


@pytest.fixture(scope="module")
def moe_tune():
    return tune_moe()


class TestMoESchedules:
    def test_overlapped_beats_gshard_everywhere(self, moe_rows):
        # the whole point of breaking the abstraction barrier
        for cap in CAPACITIES:
            entry = moe_rows[cap]
            assert entry["overlapped"] < entry["GShard-Eq"], cap

    def test_fused_beats_gshard_at_scale(self, moe_rows):
        big = moe_rows[CAPACITIES[-1]]
        assert big["fused"] < big["GShard-Eq"]

    def test_overlap_gain_grows_with_capacity(self, moe_rows):
        # larger buffers -> more exchange time to hide under the GEMMs
        small = moe_rows[CAPACITIES[0]]
        big = moe_rows[CAPACITIES[-1]]
        gain_small = small["GShard-Eq"] - small["overlapped"]
        gain_big = big["GShard-Eq"] - big["overlapped"]
        assert gain_big > gain_small

    def test_autotuner_returns_overlapped(self, moe_tune):
        assert "overlap" in moe_tune.best.name

    def test_autotuner_strictly_beats_gshard(self, moe_tune):
        wl = MoEWorkload.build(512, MODEL_DIM, FFN_DIM, WORLD_SIZE)
        gshard = ProgramCostModel(Cluster(1)).time(wl.schedule_gshard())
        assert moe_tune.best.time < gshard

    def test_hierarchical_crossover_across_nodes(self):
        # 4 nodes: at small capacities k-1 large NIC messages beat
        # (k-1)*m small ones; at large capacities the flat exchange's
        # lower fabric traffic wins back (see EXPERIMENTS.md)
        cluster = Cluster(4)
        pcm = ProgramCostModel(cluster)

        def times(cap):
            wl = MoEWorkload.build(cap, MODEL_DIM, FFN_DIM, cluster.num_ranks)
            return (
                pcm.time(wl.schedule_gshard()),
                pcm.time(
                    wl.schedule_hierarchical(cluster.node.gpus_per_node)
                ),
            )

        flat_small, hier_small = times(64)
        assert hier_small < flat_small
        flat_big, hier_big = times(1024)
        assert flat_big < hier_big

    def test_json_emitted(self, moe_rows, moe_tune):
        payload = write_json(moe_rows, moe_tune)
        assert os.path.exists(JSON_PATH)
        with open(JSON_PATH) as f:
            loaded = json.load(f)
        assert loaded == payload
        assert "overlapped" in loaded["times_seconds"]["512"]

    def test_report(self, moe_rows, moe_tune):
        text = report(moe_rows, moe_tune)
        assert "MoE expert MLP" in text


def test_benchmark_moe(benchmark):
    benchmark.pedantic(run_moe_sweep, rounds=1, iterations=1)


if __name__ == "__main__":
    rows = run_moe_sweep()
    result = tune_moe()
    report(rows, result)
    write_json(rows, result)
    print(f"\nwrote {JSON_PATH}")
    print(os.path.join(RESULTS_DIR, "moe.txt"))
