"""Portable artifacts: serialize/load latency, sizes, and fidelity.

The artifact layer (:mod:`repro.core.artifact`) promises that a saved
``*.repro.json`` is a complete, portable unit of work. This benchmark
prices that promise and guards it in CI:

* **serialize / load latency** — ``dumps`` and ``loads`` (including
  reconstruction of the live :class:`LoweredProgram`) per workload;
* **artifact size** — bytes of the compact document, gated by a *hard*
  ``max_bytes`` cap (sizes are deterministic; any growth is a format
  change, not noise);
* **fidelity** — the loaded artifact must execute bit-identically to
  the live schedule on the lowered interpreter, and the committed
  golden files under ``tests/golden/`` must load and keep their
  recorded hashes.

Emits ``BENCH_artifact.json`` at the repo root::

    PYTHONPATH=src:. python benchmarks/bench_artifact.py           # full
    PYTHONPATH=src:. python benchmarks/bench_artifact.py --smoke   # CI

``--regen-goldens`` rewrites the golden files from the pinned recipes
below (run it in a *fresh* interpreter — generated value names carry a
process-global counter, so the recorded content hashes are reproducible
only from the same build sequence); commit the results together with
the updated hashes in ``tests/test_artifact.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict

import numpy as np

sys.path.insert(0, os.path.dirname(__file__))
from _common import save_report, table  # noqa: E402

from repro.core import artifact  # noqa: E402
from repro.runtime import Executor  # noqa: E402
from repro.workloads.adam import AdamWorkload  # noqa: E402
from repro.workloads.attention import AttentionWorkload  # noqa: E402
from repro.workloads.moe import MoEWorkload  # noqa: E402

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(_ROOT, "BENCH_artifact.json")
GOLDEN_DIR = os.path.join(_ROOT, "tests", "golden")


def golden_recipes():
    """The exact build sequences behind ``tests/golden/*.repro.json``."""
    adam = AdamWorkload.build(64, 4).schedules()["fuse(RS-Adam-AG)"]
    moe = MoEWorkload.build(3, 6, 8, world_size=4).schedules()["overlapped"]
    return {
        "adam_fused.repro.json": adam,
        "moe_overlapped.repro.json": moe,
    }


def bench_configs(rng: np.random.RandomState):
    """(schedule, inputs) per benchmarked workload."""
    adam = AdamWorkload.build(64, 4).schedule_fused()
    adam_inputs = dict(
        g=rng.randn(4, 64) * 0.1,
        p=rng.randn(64),
        m=rng.randn(64) * 0.01,
        v=np.abs(rng.randn(64)) * 0.01,
        lr=0.01,
        t=3.0,
    )
    moe = MoEWorkload.build(3, 6, 8, world_size=4).schedule_overlapped()
    moe_inputs = {
        "x": rng.randn(4, 4, 3, 6),
        "w1": rng.randn(4, 6, 8),
        "w2": rng.randn(4, 8, 6),
    }
    attn = AttentionWorkload.build(4, 8, 16, 4, dropout_seed=6)
    attn = attn.schedule_coconet()
    attn_inputs = {
        "w": rng.randn(16, 16),
        "b": rng.randn(16),
        "in": rng.randn(4, 8, 16),
        "r": rng.randn(4, 8, 16),
    }
    return {
        "adam_fused": (adam, adam_inputs),
        "moe_overlapped": (moe, moe_inputs),
        "attention_coconet": (attn, attn_inputs),
    }


def run_config(name: str, sched, inputs, repeats: int) -> Dict:
    text = artifact.dumps(sched)
    dump_times, load_times = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        artifact.dumps(sched)
        dump_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        artifact.loads(text).lowered()  # parse + full reconstruction
        load_times.append(time.perf_counter() - t0)

    art = artifact.loads(text)
    ex = Executor()
    live = ex.run_lowered(sched, inputs, allow_downcast=True)
    again = ex.run_lowered(art, inputs, allow_downcast=True)
    program = art.program
    equal = all(
        np.array_equal(again.output(o.name), live.output(o.name))
        for o in program.outputs
    )
    return {
        "bytes": len(text.encode("utf-8")),
        "dumps_ms": statistics.median(dump_times) * 1e3,
        "loads_ms": statistics.median(load_times) * 1e3,
        "equal_outputs": equal,
        "content_hash": art.content_hash,
        "structural_hash": art.structural_hash,
    }


def check_goldens() -> Dict:
    """Every committed golden loads and carries a verified hash."""
    out: Dict = {}
    ok = True
    for fname in sorted(os.listdir(GOLDEN_DIR)):
        if not fname.endswith(".repro.json"):
            continue
        path = os.path.join(GOLDEN_DIR, fname)
        try:
            art = artifact.load(path)  # verifies the content hash
            # the reconstruction must re-serialize losslessly
            loaded = artifact.to_payload(art.lowered()) == art.payload
            out[fname] = {
                "loaded": bool(loaded),
                "schema_version": art.schema_version,
                "content_hash": art.content_hash,
            }
            ok &= bool(loaded)
        except artifact.ArtifactError as exc:
            out[fname] = {"loaded": False, "error": str(exc)}
            ok = False
    out["all_loaded"] = ok
    return out


def regen_goldens() -> None:
    for fname, sched in golden_recipes().items():
        path = os.path.join(GOLDEN_DIR, fname)
        art = artifact.save(sched, path)
        print(f"{fname}: {art.content_hash} {art.structural_hash}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer repeats (CI); same workloads and size caps",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--regen-goldens", action="store_true",
        help="rewrite tests/golden/*.repro.json from the pinned recipes "
             "(run in a fresh interpreter) instead of benchmarking",
    )
    args = parser.parse_args()
    if args.regen_goldens:
        regen_goldens()
        return
    repeats = args.repeats or (3 if args.smoke else 10)
    rng = np.random.RandomState(0xA27F)

    report = {
        "benchmark": "artifact",
        "mode": "smoke" if args.smoke else "full",
        "configs": {},
        "sizes": {},
    }
    rows = []
    for name, (sched, inputs) in bench_configs(rng).items():
        entry = run_config(name, sched, inputs, repeats)
        report["configs"][name] = entry
        report["sizes"][f"{name}_bytes"] = entry["bytes"]
        rows.append(
            [
                name,
                f"{entry['bytes']} B",
                f"{entry['dumps_ms']:.2f} ms",
                f"{entry['loads_ms']:.2f} ms",
                entry["equal_outputs"],
            ]
        )

    report["goldens"] = check_goldens()
    equal_all = all(
        e["equal_outputs"] for e in report["configs"].values()
    )
    report["equal_outputs"] = equal_all

    lines = ["Portable artifacts: size, codec latency, fidelity", ""]
    lines += table(
        ["config", "size", "dumps", "loads+reconstruct", "equal"], rows
    )
    lines.append("")
    lines.append(
        f"loaded artifacts bit-identical to live schedules: {equal_all}; "
        f"goldens load: {report['goldens']['all_loaded']}"
    )
    save_report("artifact", lines)

    with open(JSON_PATH, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"\nwrote {JSON_PATH}")

    assert equal_all, "artifact round-trip diverged from the live run"
    assert report["goldens"]["all_loaded"], "a golden file failed to load"


if __name__ == "__main__":
    main()
