"""Table 5: pipeline-parallel inference, GPT-2 8.3B and GPT-3 175B.

Paper: integrating the ol(RS, fuse(C-P2P), AG) schedule into
Megatron-LM speeds up inference by 1.77x (GPT-2 8.3B, 5 layers/node,
micro-batch 16) and 1.33x (GPT-3 175B, 6 layers/node, micro-batch 2).

Model of one pipeline stage (one DGX-2 node holding L transformer
layers with 16-way model parallelism):

* per layer: the attention + MLP GEMMs (tensor-parallel) plus two
  AllReduces over the [B,S,H] activations and the pointwise epilogue;
* at the stage boundary: Figure 8a's operations — Megatron sends the
  full replicated activation from every rank over InfiniBand, CoCoNet
  runs the overlapped sliced schedule (Figure 8b).
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.cluster import Cluster
from repro.core.process_group import ProcessGroup
from repro.nccl.config import choose_config
from repro.perf import ProgramCostModel, kernel_cost
from repro.workloads.models import GPT2_8_3B, GPT3_175B, ModelConfig
from repro.workloads.pipeline import PipelineWorkload

PAPER = {
    "GPT-2 8.3B": dict(layers_per_node=5, micro_batch=16, speedup=1.77),
    "GPT-3 175B": dict(layers_per_node=6, micro_batch=2, speedup=1.33),
}
TENSOR_PARALLEL = 16
GEMM_EFFICIENCY = 0.72


def _layer_time(config: ModelConfig, batch: int, cluster) -> float:
    """One transformer layer under 16-way model parallelism."""
    gpu = cluster.node.gpu
    h, s = config.hidden, config.seq_length
    # attention QKV+proj and the two MLP GEMMs: 24·B·S·H² FLOPs/layer,
    # split across the tensor-parallel group
    flops = 24.0 * batch * s * h * h / TENSOR_PARALLEL
    gemm = flops / (gpu.fp16_tflops * 1e12 * GEMM_EFFICIENCY)
    gemm += 4 * gpu.kernel_launch_overhead
    act_bytes = 2 * batch * s * h
    group = ProcessGroup(0, TENSOR_PARALLEL, TENSOR_PARALLEL)
    _, ar = choose_config("allreduce", act_bytes, cluster, group)
    comm = 2 * (ar + gpu.kernel_launch_overhead)
    epilogue = kernel_cost.pointwise_time(3 * act_bytes, gpu)
    return gemm + comm + epilogue


def _boundary_times(config: ModelConfig, batch: int):
    """(megatron, coconet) stage-boundary times from the Figure 8
    schedules; the boundary replaces the last layer's AllReduce."""
    cluster = Cluster(2)
    times = {}
    for name, builder in (
        ("megatron", "schedule_megatron"),
        ("coconet", "schedule_coconet"),
    ):
        wl = PipelineWorkload.build(
            batch, config.seq_length, config.hidden,
            world_size=2 * TENSOR_PARALLEL, num_groups=2,
        )
        sched = getattr(wl, builder)()
        times[name] = ProgramCostModel(cluster).time(sched)
    return times["megatron"], times["coconet"]


def run_table5():
    cluster = Cluster(2)
    results = {}
    for config in (GPT2_8_3B, GPT3_175B):
        info = PAPER[config.name]
        layers, batch = info["layers_per_node"], info["micro_batch"]
        t_layer = _layer_time(config, batch, cluster)
        boundary_meg, boundary_cc = _boundary_times(config, batch)
        group = ProcessGroup(0, TENSOR_PARALLEL, TENSOR_PARALLEL)
        _, ar = choose_config(
            "allreduce", 2 * batch * config.seq_length * config.hidden,
            cluster, group,
        )
        # both stage models: L layers; the boundary schedule subsumes
        # the last layer's AllReduce + epilogue
        megatron = layers * t_layer + (boundary_meg - ar)
        coconet = layers * t_layer - ar + (boundary_cc - ar)
        results[config.name] = dict(
            layer_ms=t_layer * 1e3,
            megatron_stage_ms=megatron * 1e3,
            coconet_stage_ms=coconet * 1e3,
            speedup=megatron / coconet,
            paper=info["speedup"],
            micro_batch=batch,
            layers_per_node=layers,
        )
    return results


def report(results) -> str:
    rows = [
        [
            name,
            r["layers_per_node"],
            r["micro_batch"],
            f"{r['megatron_stage_ms']:.1f}",
            f"{r['coconet_stage_ms']:.1f}",
            f"{r['speedup']:.2f}x",
            f"{r['paper']:.2f}x",
        ]
        for name, r in results.items()
    ]
    lines = [
        "Table 5 — pipeline-parallel inference "
        "(per-stage time, 16-way model parallel per node)",
        "",
    ]
    lines += table(
        ["model", "layers/node", "micro-batch", "Megatron ms",
         "CoCoNet ms", "speedup", "paper"],
        rows,
    )
    return save_report("table5", lines)


@pytest.fixture(scope="module")
def results():
    return run_table5()


class TestTable5:
    def test_both_models_speed_up(self, results):
        for r in results.values():
            assert r["speedup"] > 1.1

    def test_gpt2_gains_more_than_gpt3(self, results):
        # GPT-2's smaller hidden size makes it communication-heavier,
        # the paper's 1.77x vs 1.33x ordering
        assert (
            results["GPT-2 8.3B"]["speedup"]
            > results["GPT-3 175B"]["speedup"]
        )

    def test_gpt2_band(self, results):
        s = results["GPT-2 8.3B"]["speedup"]
        assert 1.4 <= s <= 2.1  # paper: 1.77x

    def test_gpt3_band(self, results):
        s = results["GPT-3 175B"]["speedup"]
        assert 1.1 <= s <= 1.6  # paper: 1.33x

    def test_stage_times_dominated_by_layers(self, results):
        for r in results.values():
            assert r["coconet_stage_ms"] > (
                r["layers_per_node"] - 1
            ) * r["layer_ms"]

    def test_report(self, results):
        assert "Table 5" in report(results)


def test_benchmark_table5(benchmark):
    benchmark.pedantic(run_table5, rounds=1, iterations=1)
