"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **protocols** — where the LL / LL128 / Simple crossovers fall (the
  trade-off of §5.1 that the autotuner exploits);
* **channels** — channel count vs achieved collective time (§5.1);
* **overlap granularity** — chunk count vs overlap benefit (Figure 9's
  knob: too few chunks serialize, too many pay per-chunk sync);
* **bucket size** — scattered-tensor bucket size vs metadata overhead
  and lookup behaviour (§5.4's 2^10-element choice).
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.cluster import Cluster
from repro.core import FP16, RANK, AllReduce, Execute, MatMul, Sliced, Tensor, world
from repro.core.process_group import world as make_world
from repro.core.transforms import Schedule
from repro.nccl import ALL_PROTOCOLS, build_ring, collective_time
from repro.nccl.cost_model import Algorithm
from repro.perf import ProgramCostModel
from repro.scattered.bucketing import BUCKET_METADATA_BYTES


# --------------------------------------------------------------------------
# Ablation 1: protocol crossovers
# --------------------------------------------------------------------------

def run_protocol_ablation():
    cluster = Cluster(16)
    ring = build_ring(cluster, make_world(256))
    rows = {}
    for exp in range(10, 31, 2):
        nbytes = 2 * 2**exp
        rows[exp] = {
            p.name: collective_time(
                "allreduce", nbytes, cluster, ring, p, 8, Algorithm.RING
            )
            for p in ALL_PROTOCOLS
        }
    return rows


class TestProtocolAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_protocol_ablation()

    def test_ll_wins_small(self, rows):
        small = rows[10]
        assert small["LL"] == min(small.values())

    def test_simple_wins_large(self, rows):
        large = rows[30]
        assert large["Simple"] == min(large.values())

    def test_ll128_wins_somewhere_between(self, rows):
        winners = [min(r, key=r.get) for r in rows.values()]
        assert "LL128" in winners

    def test_report(self, rows):
        body = [
            [f"2^{e}"] + [f"{r[p.name] * 1e6:.1f}" for p in ALL_PROTOCOLS]
            for e, r in rows.items()
        ]
        lines = ["Ablation — protocol crossover (ring AR, 256 GPUs, us)", ""]
        lines += table(
            ["elements"] + [p.name for p in ALL_PROTOCOLS], body
        )
        assert "Ablation" in save_report("ablation_protocols", lines)


# --------------------------------------------------------------------------
# Ablation 2: channel count
# --------------------------------------------------------------------------

def run_channel_ablation(single_node=True):
    cluster = Cluster(1 if single_node else 16)
    n = 16 if single_node else 256
    ring = build_ring(cluster, make_world(n))
    from repro.nccl import SIMPLE

    return {
        ch: collective_time(
            "allreduce", 2 * 2**26, cluster, ring, SIMPLE, ch,
            Algorithm.RING,
        )
        for ch in (2, 4, 8, 16, 24, 32, 48, 64)
    }


class TestChannelAblation:
    def test_more_channels_help_until_fabric_limit(self):
        times = run_channel_ablation(single_node=True)
        assert times[8] < times[2]
        # beyond the NVSwitch injection limit, extra channels don't help
        assert times[64] == pytest.approx(times[16], rel=0.05)

    def test_multi_node_saturates_at_nic_count(self):
        times = run_channel_ablation(single_node=False)
        assert times[8] < times[2]
        assert times[64] == pytest.approx(times[8], rel=0.05)

    def test_report(self):
        times = run_channel_ablation()
        body = [[ch, f"{t * 1e3:.3f}"] for ch, t in times.items()]
        lines = ["Ablation — channels (ring AR 128 MiB, 16 GPUs, ms)", ""]
        lines += table(["channels", "time"], body)
        save_report("ablation_channels", lines)


# --------------------------------------------------------------------------
# Ablation 3: overlap granularity
# --------------------------------------------------------------------------

def _mm_ar(batch=16):
    W = world(16)
    m, k, n = batch * 1024, 768, 3072
    a = Tensor(FP16, (m, k * 16), Sliced(1), W, RANK, name="a")
    w = Tensor(FP16, (k * 16, n), Sliced(0), W, RANK, name="w")
    layer = MatMul(a, w, name="layer")
    s = AllReduce("+", layer, name="sum")
    return Execute("mm_ar", [a, w], [s]), layer, s


def run_overlap_granularity():
    cluster = Cluster(1)
    times = {}
    for chunks in (1, 2, 4, 8, 16, 32, 64):
        prog, layer, s = _mm_ar()
        sched = Schedule(prog)
        sched.overlap(layer, s)
        pcm = ProgramCostModel(cluster, overlap_chunks=chunks)
        times[chunks] = pcm.time(sched)
    return times


class TestOverlapGranularity:
    @pytest.fixture(scope="class")
    def times(self):
        return run_overlap_granularity()

    def test_few_chunks_serialize(self, times):
        # 1 chunk = no overlap at all
        assert times[1] > times[16]

    def test_sweet_spot_exists(self, times):
        best = min(times, key=times.get)
        assert 4 <= best <= 64

    def test_diminishing_returns(self, times):
        gain_2_to_8 = times[2] - times[8]
        gain_16_to_64 = times[16] - times[64]
        assert gain_2_to_8 > gain_16_to_64

    def test_report(self, times):
        body = [[c, f"{t * 1e3:.3f}"] for c, t in times.items()]
        lines = [
            "Ablation — overlap chunk count (MM+AR, B=16, 16 GPUs, ms)", ""
        ]
        lines += table(["chunks", "time"], body)
        save_report("ablation_overlap_granularity", lines)


# --------------------------------------------------------------------------
# Ablation 4: bucket size
# --------------------------------------------------------------------------

def run_bucket_ablation(num_elements=334_000_000):
    rows = {}
    for exp in (6, 8, 10, 12, 14):
        bucket = 2**exp
        buckets = -(-num_elements // bucket)
        metadata = buckets * BUCKET_METADATA_BYTES
        rows[exp] = dict(
            buckets=buckets,
            metadata_mb=metadata / 2**20,
            metadata_fraction=metadata / (2 * num_elements),
        )
    return rows


class TestBucketAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_bucket_ablation()

    def test_metadata_shrinks_with_bucket_size(self, rows):
        assert rows[6]["metadata_mb"] > rows[10]["metadata_mb"]
        assert rows[10]["metadata_mb"] > rows[14]["metadata_mb"]

    def test_paper_choice_is_sub_percent(self, rows):
        # 2^10 buckets: ~0.6% of the fp16 data (§5.4)
        assert rows[10]["metadata_fraction"] < 0.01

    def test_tiny_buckets_blow_up_metadata(self, rows):
        assert rows[6]["metadata_fraction"] > 0.05

    def test_report(self, rows):
        body = [
            [f"2^{e}", r["buckets"], f"{r['metadata_mb']:.1f}",
             f"{r['metadata_fraction']:.2%}"]
            for e, r in rows.items()
        ]
        lines = [
            "Ablation — bucket size vs metadata overhead (334M elements)",
            "",
        ]
        lines += table(
            ["bucket elems", "buckets", "metadata MiB", "fraction"], body
        )
        save_report("ablation_bucket_size", lines)


def test_benchmark_ablations(benchmark):
    def run_all():
        run_protocol_ablation()
        run_channel_ablation()
        run_overlap_granularity()
        run_bucket_ablation()

    benchmark.pedantic(run_all, rounds=1, iterations=1)
