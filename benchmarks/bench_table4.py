"""Table 4: BERT data-parallel training — batch sizes and speedups.

Paper (256 V100s, mixed precision):

    Optimizer  Model   max micro-batch (NV/DDP/ZeRO/CoCoNet)  speedups
    Adam       336M    32 / 32 / 32 / 32     1.18x 1.22x 1.10x
    Adam       1.2B    8  / 8  / 32 / 32     1.53x 1.52x 1.10x
    Adam       3.9B    OOM/ OOM/ 8  / 8      -     -     1.22x
    LAMB       336M    64 / 64 / 64 / 128    1.20x 1.20x 1.15x
    LAMB       1.2B    8  / 8  / 8  / 64     1.67x 1.68x 1.64x
    LAMB       3.9B    OOM/ OOM/ OOM/ 8      -     -     -

Our memory model reproduces the micro-batch matrix (17/18 cells; see
EXPERIMENTS.md); throughput speedups come from the iteration-time model
— strongest where the paper's mechanism is batch-size driven.
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_report, table
from repro.baselines import ALL_STRATEGIES, FUSED_ADAM, FUSED_LAMB
from repro.cluster import Cluster
from repro.workloads.models import BERT_1_2B, BERT_336M, BERT_3_9B

MODELS = (BERT_336M, BERT_1_2B, BERT_3_9B)
#: global batch / 256 ranks caps the micro-batch (8192 for Adam,
#: 65536 for LAMB)
CAPS = {"Adam": 32, "LAMB": 256}

PAPER_BATCHES = {
    ("Adam", "BERT 336M"): (32, 32, 32, 32),
    ("Adam", "BERT 1.2B"): (8, 8, 32, 32),
    ("Adam", "BERT 3.9B"): (None, None, 8, 8),
    ("LAMB", "BERT 336M"): (64, 64, 64, 128),
    ("LAMB", "BERT 1.2B"): (8, 8, 8, 64),
    ("LAMB", "BERT 3.9B"): (None, None, None, 8),
}
PAPER_SPEEDUPS = {
    ("Adam", "BERT 336M"): (1.18, 1.22, 1.10),
    ("Adam", "BERT 1.2B"): (1.53, 1.52, 1.10),
    ("Adam", "BERT 3.9B"): (None, None, 1.22),
    ("LAMB", "BERT 336M"): (1.20, 1.20, 1.15),
    ("LAMB", "BERT 1.2B"): (1.67, 1.68, 1.64),
    ("LAMB", "BERT 3.9B"): (None, None, None),
}


def run_table4():
    cluster = Cluster(16)
    results = {}
    for opt_name, optimizer in (("Adam", FUSED_ADAM), ("LAMB", FUSED_LAMB)):
        for model in MODELS:
            strategies = ALL_STRATEGIES(optimizer)
            cap = CAPS[opt_name]
            batches = [
                s.max_micro_batch(model, cluster, cap=cap)
                for s in strategies
            ]
            tputs = [
                s.throughput(model, cluster, cap=cap) for s in strategies
            ]
            cc = tputs[-1]
            speedups = [
                (cc / t) if (t and cc) else None for t in tputs[:-1]
            ]
            results[(opt_name, model.name)] = dict(
                batches=tuple(batches), speedups=tuple(speedups)
            )
    return results


def _fmt_b(b):
    return "OOM" if b is None else str(b)


def _fmt_s(s):
    return "-" if s is None else f"{s:.2f}x"


def report(results) -> str:
    rows = []
    for (opt, model), r in results.items():
        pb = PAPER_BATCHES[(opt, model)]
        ps = PAPER_SPEEDUPS[(opt, model)]
        rows.append(
            [
                opt, model,
                "/".join(_fmt_b(b) for b in r["batches"]),
                "/".join(_fmt_b(b) for b in pb),
                " ".join(_fmt_s(s) for s in r["speedups"]),
                " ".join(_fmt_s(s) for s in ps),
            ]
        )
    lines = [
        "Table 4 — BERT training on 256 simulated V100s "
        "(NV BERT / PyTorch DDP / ZeRO / CoCoNet)",
        "",
    ]
    lines += table(
        ["opt", "model", "micro-batch (ours)", "micro-batch (paper)",
         "CoCoNet speedup (ours)", "paper"],
        rows,
    )
    return save_report("table4", lines)


@pytest.fixture(scope="module")
def results():
    return run_table4()


class TestTable4:
    def test_micro_batch_matrix_matches_paper(self, results):
        # 17 of 18 cells match; LAMB 1.2B CoCoNet is the known exception
        mismatches = []
        for key, r in results.items():
            for ours, paper in zip(r["batches"], PAPER_BATCHES[key]):
                if ours != paper:
                    mismatches.append((key, ours, paper))
        assert len(mismatches) <= 1, mismatches

    def test_oom_pattern_matches_exactly(self, results):
        for key, r in results.items():
            ours_oom = tuple(b is None for b in r["batches"])
            paper_oom = tuple(b is None for b in PAPER_BATCHES[key])
            assert ours_oom == paper_oom, key

    def test_coconet_always_runs(self, results):
        for r in results.values():
            assert r["batches"][-1] is not None

    def test_coconet_never_slower(self, results):
        for r in results.values():
            for s in r["speedups"]:
                if s is not None:
                    assert s >= 0.95

    def test_memory_driven_speedups_large(self, results):
        # 1.2B: baselines capped at micro-batch 8 vs CoCoNet 32/64 —
        # the batch advantage dominates (paper: 1.52-1.68x)
        adam = results[("Adam", "BERT 1.2B")]["speedups"]
        assert adam[0] > 1.3 and adam[1] > 1.05
        lamb = results[("LAMB", "BERT 1.2B")]["speedups"]
        assert lamb[0] > 1.3 and lamb[2] > 1.3

    def test_report(self, results):
        assert "Table 4" in report(results)


def test_benchmark_table4(benchmark):
    benchmark.pedantic(run_table4, rounds=1, iterations=1)
