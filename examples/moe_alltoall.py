#!/usr/bin/env python
"""Mixture-of-Experts over AllToAll: a workload GShard can't co-optimize.

Walks the full subsystem added for MoE:

1. build the GShard-style expert-MLP program (dispatch-AllToAll →
   expert GEMM → ReLU → expert GEMM → combine-AllToAll);
2. apply the schedule family — GShard-Eq, fused (scaling reordered into
   the combine exchange), overlapped (the five-stage chunk pipeline) —
   and show every schedule computes identical values;
3. split an AllToAll into hierarchical intra-node + inter-node phases
   and verify the composition is exact;
4. let the autotuner rediscover the overlapped schedule and report the
   simulated times.
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import FP32
from repro.core.autotuner import Autotuner
from repro.core.transforms import A2ASplitHierarchical, Schedule
from repro.perf import ProgramCostModel
from repro.runtime import Executor
from repro.workloads.moe import MoEWorkload, moe_reference


def main():
    # -- 1. The program, at a size the numeric simulator runs instantly --
    n, C, M, F = 4, 2, 6, 8
    wl = MoEWorkload.build(C, M, F, world_size=n, dtype=FP32)
    print("=== The MoE program ===")
    print(wl.program.pretty())

    rng = np.random.RandomState(0xA2A)
    inputs = {
        "x": rng.randn(n, n, C, M),
        "w1": rng.randn(n, M, F),
        "w2": rng.randn(n, F, M),
    }
    ref = moe_reference(inputs["x"], inputs["w1"], inputs["w2"])

    # -- 2. Every schedule computes the same numbers ---------------------
    for name, sched in wl.schedules().items():
        res = Executor().run(sched.program, inputs)
        # a Local output reassembles with the rank axis leading, the
        # same convention moe_reference uses
        got = res.output(sched.program.outputs[0].name)
        assert np.allclose(ref, got, rtol=1e-5), name
        print(f"schedule {name!r}: OK ({len(sched.program.operations)} ops)")

    # -- 3. Hierarchical AllToAll split is exact -------------------------
    sched = Schedule(wl.program)
    sched.split(wl.dispatch, A2ASplitHierarchical, node_size=2)
    res = Executor().run(sched.program, inputs)
    got = res.output(sched.program.outputs[0].name)
    assert np.allclose(ref, got, rtol=1e-5)
    print("\nhierarchical split (2 GPUs/node):")
    print(sched.describe())

    # -- 4. At DGX-2 scale the autotuner finds the overlapped pipeline ---
    cluster = Cluster(1)
    big = MoEWorkload.build(512, 1024, 4096, world_size=16)
    pcm = ProgramCostModel(cluster)
    print("\nAt scale (E=16, C=512, M=1024, F=4096) on a simulated DGX-2:")
    times = {name: pcm.time(s) for name, s in big.schedules().items()}
    for name, t in times.items():
        print(f"  {name:12s} {t * 1e3:8.3f} ms")
    result = Autotuner(cluster).tune(big.program)
    print(f"autotuner best: {result.best.name}")
    speedup = times["GShard-Eq"] / result.best.time
    assert result.best.time <= times["overlapped"] * 1.001
    print(f"speedup over GShard-Eq: {speedup:.2f}x")


if __name__ == "__main__":
    main()
