#!/usr/bin/env python
"""Quickstart: write a distributed program, transform it, run it.

This walks through the paper's running example (Figure 3 / Figure 4):
the epilogue of a Megatron-style model-parallel layer — a MatMul over
sliced weights, an AllReduce, bias + dropout + residual — and applies
the full transformation chain: split, reorder, fuse, overlap. Every
schedule computes identical values; the simulated performance model
shows why the transformed one is faster.
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import (
    FP32,
    RANK,
    AllReduce,
    Binary,
    Dropout,
    Execute,
    MatMul,
    Replicated,
    Sliced,
    Tensor,
    world,
)
from repro.core.transforms import AllReduceFuse, ARSplitRSAG, Schedule
from repro.perf import ProgramCostModel
from repro.runtime import Executor


def main():
    # -- 1. Declare distributed tensors (Figure 3) ----------------------
    num_gpus = 16
    B, S, H = 8, 64, 128  # kept small so the simulated run is instant
    W = world(num_gpus)

    w = Tensor(FP32, (H, H), Sliced(0), W, RANK, name="w")
    b = Tensor(FP32, (H,), Replicated, W, name="b")
    x = Tensor(FP32, (B, S, H), Sliced(2), W, RANK, name="in")
    r = Tensor(FP32, (B, S, H), Replicated, W, name="r")

    # -- 2. Express computation AND communication ----------------------
    layer = MatMul(x, w, name="layer")           # local partial sums
    total = AllReduce("+", layer, name="sum")    # replicated
    biased = Binary("+", total, b, name="sum_b")
    dropped = Dropout(biased, 0.1, seed=7, name="drop")
    out = Binary("+", dropped, r, name="out")
    program = Execute("self_attention", [w, x, b, r], [out])
    print("=== The program (Figure 3) ===")
    print(program.pretty())

    # -- 3. Transform it (Figure 4) --------------------------------------
    sched = Schedule(program)
    rs, ag = sched.split(total, ARSplitRSAG)
    sliced = sched.reorder(ag, biased, dropped, out)
    fused = sched.fuse(rs, *sliced, policy=AllReduceFuse)
    sched.overlap(layer, fused)
    print("\n=== Applied schedule ===")
    print(sched.describe())
    print("\n=== Transformed program ===")
    print(sched.program.pretty())

    # -- 4. Both compute the same values ---------------------------------
    rng = np.random.RandomState(0)
    inputs = {
        "w": rng.randn(H, H),
        "b": rng.randn(H),
        "in": rng.randn(B, S, H),
        "r": rng.randn(B, S, H),
    }
    ref = Executor().run(program, inputs).output("out")
    opt = Executor().run(sched.program, inputs)
    opt_out = opt.output(sched.program.outputs[0].name)
    assert np.allclose(ref, opt_out, rtol=1e-6)
    print("\nSemantics preserved: max |diff| =",
          float(np.abs(ref - opt_out).max()))

    # -- 5. And the transformed one is faster at real scale --------------
    # (the numeric check above ran tiny shapes; performance is simulated
    # at the paper's GPT-2 scale, where the schedule shines)
    def build_at_scale():
        Wp = world(num_gpus)
        Bp, Sp, Hp = 8, 1024, 3072
        from repro.core import FP16

        wp = Tensor(FP16, (Hp, Hp), Sliced(0), Wp, RANK, name="w")
        bp = Tensor(FP16, (Hp,), Replicated, Wp, name="b")
        xp = Tensor(FP16, (Bp, Sp, Hp), Sliced(2), Wp, RANK, name="in")
        rp = Tensor(FP16, (Bp, Sp, Hp), Replicated, Wp, name="r")
        lp = MatMul(xp, wp, name="layer")
        tp = AllReduce("+", lp, name="sum")
        op = Binary("+", Dropout(Binary("+", tp, bp), 0.1, seed=7), rp)
        return Execute("attn", [wp, xp, bp, rp], [op]), lp, tp, op

    prog_s, layer_s, total_s, out_s = build_at_scale()
    cluster = Cluster(1)
    t_base = ProgramCostModel(cluster).time(Schedule(prog_s))
    prog_s2, layer_s2, total_s2, out_s2 = build_at_scale()
    sched_s = Schedule(prog_s2)
    rs2, ag2 = sched_s.split(total_s2, ARSplitRSAG)
    region = [e for e in sched_s.program.operations
              if e not in (layer_s2, rs2, ag2)]
    sliced2 = sched_s.reorder(ag2, *region)
    fused2 = sched_s.fuse(rs2, *sliced2, policy=AllReduceFuse)
    sched_s.overlap(layer_s2, fused2)
    t_opt = ProgramCostModel(cluster).time(sched_s)
    print(f"\nAt GPT-2 scale (B=8, S=1024, H=3072) on a simulated DGX-2:")
    print(f"  default schedule:   {t_base * 1e3:8.3f} ms")
    print(f"  CoCoNet schedule:   {t_opt * 1e3:8.3f} ms")
    print(f"  speedup: {t_base / t_opt:.2f}x")


if __name__ == "__main__":
    main()
