#!/usr/bin/env python
"""Model-parallel inference: the four schedules of Figure 11.

Builds the Megatron-LM self-attention and MLP epilogues at GPT-2 scale
and compares the paper's four schedules on the simulated DGX-2:
Megatron-LM (unfused), MM-AR-C (fused pointwise), GShard-Eq
(MM-RS-C-AG) and CoCoNet's ol(MM, fuse(RS-C-AG)). Also verifies all
four schedules agree numerically at a reduced size and shows the
generated kernel code for the fused collective.
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import FP32
from repro.core.codegen import CodeGenerator
from repro.perf import ProgramCostModel
from repro.runtime import Executor
from repro.workloads.attention import AttentionWorkload

SCHEDULE_BUILDERS = {
    "MegatronLM": "schedule_megatron",
    "MM-AR-C": "schedule_mm_ar_c",
    "GShard-Eq": "schedule_gshard",
    "CoCoNet": "schedule_coconet",
}


def performance_comparison():
    print("=== Simulated times, GPT-2 scale (S=1024, H=3072, 16 GPUs) ===")
    cluster = Cluster(1)
    for label, expansion in (("self-attention", 1), ("MLP", 4)):
        times = {}
        for name, builder in SCHEDULE_BUILDERS.items():
            wl = AttentionWorkload.build(
                8, 1024, 3072, 16, expansion=expansion
            )
            sched = getattr(wl, builder)()
            times[name] = ProgramCostModel(
                cluster, gemm_efficiency=0.8
            ).time(sched)
        base = times["MegatronLM"]
        print(f"\n{label}:")
        for name, t in times.items():
            print(f"  {name:12s} {t * 1e3:7.3f} ms   "
                  f"{base / t:5.2f}x vs Megatron-LM")


def correctness_check():
    print("\n=== All four schedules agree numerically ===")
    rng = np.random.RandomState(3)
    B, S, H = 4, 8, 16
    inputs = {
        "w": rng.randn(H, H), "b": rng.randn(H),
        "in": rng.randn(B, S, H), "r": rng.randn(B, S, H),
    }
    outputs = {}
    for name, builder in SCHEDULE_BUILDERS.items():
        wl = AttentionWorkload.build(B, S, H, 4, dtype=FP32, dropout_seed=9)
        sched = getattr(wl, builder)()
        res = Executor().run(sched.program, inputs)
        outputs[name] = res.output(sched.program.outputs[0].name)
    ref = outputs["MegatronLM"]
    for name, out in outputs.items():
        print(f"  {name:12s} max diff vs Megatron-LM: "
              f"{float(np.abs(out - ref).max()):.2e}")
        assert np.allclose(out, ref, rtol=1e-6)


def show_overlap_timeline():
    print("\n=== Why the overlap wins: per-resource timeline ===")
    from repro.perf.timeline import render_gantt, resource_utilization

    cluster = Cluster(1)
    for name in ("megatron", "coconet"):
        wl = AttentionWorkload.build(8, 1024, 3072, 16)
        sched = getattr(wl, f"schedule_{name}")()
        tl, tasks = ProgramCostModel(
            cluster, gemm_efficiency=0.8
        ).timeline(sched)
        util = resource_utilization(tl, tasks)
        print(f"\n{name}:")
        print(render_gantt(tl, tasks, width=64, max_rows=3))
        busy = ", ".join(f"{r}: {u:.0%}" for r, u in sorted(util.items()))
        print(f"utilization: {busy}")


def show_generated_kernel():
    print("\n=== Generated FusedAllReduce kernel (excerpt) ===")
    wl = AttentionWorkload.build(4, 8, 16, 4, dtype=FP32)
    sched = wl.schedule_coconet()
    gen = CodeGenerator("LL128").generate(sched)
    fused_name = next(
        k for k in gen.kernel_sources if k.startswith("allreducefuse")
    )
    source = gen.kernel_sources[fused_name]
    print("\n".join(source.splitlines()[:18]))
    print(f"  ... ({gen.kernel_loc(fused_name)} lines total, "
          f"{gen.loc()} for the whole program)")


if __name__ == "__main__":
    performance_comparison()
    correctness_check()
    show_overlap_timeline()
    show_generated_kernel()
