#!/usr/bin/env python
"""Pipeline parallelism at GPT-3 scale: Figures 7, 8 and 12.

Shows how Figure 8a's pipeline-boundary program (AllReduce + pointwise
+ P2P send to the next group) is transformed into the overlapped
schedule of Figure 8b — fuse the send with its computation, split the
AllReduce, reorder the AllGather into the next group, overlap all three
communication stages — and what each step buys on the simulated
two-node cluster. Ends with the Table 5 stage-level estimate.
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from benchmarks.bench_table5 import run_table5  # noqa: E402

from repro.cluster import Cluster
from repro.core import FP32
from repro.perf import ProgramCostModel
from repro.runtime import Executor
from repro.workloads.pipeline import PipelineWorkload

SEQ, HIDDEN = 2048, 12288  # GPT-3 175B


def schedule_progression():
    print("=== Schedule progression (GPT-3 shapes, B=4, 2 nodes) ===")
    cluster = Cluster(2)
    names = ["megatron", "ar_c_p2p_ag", "gshard", "coconet"]
    labels = {
        "megatron": "Megatron-LM (replicated P2P)",
        "ar_c_p2p_ag": "AR-C-P2P-AG (sliced P2P)",
        "gshard": "GShard-Eq (RS-C-P2P-AG)",
        "coconet": "CoCoNet ol(RS, fuse(C-P2P), AG)",
    }
    base = None
    for name in names:
        wl = PipelineWorkload.build(
            4, SEQ, HIDDEN, world_size=32, num_groups=2
        )
        sched = getattr(wl, f"schedule_{name}")()
        t = ProgramCostModel(cluster).time(sched)
        base = base or t
        print(f"  {labels[name]:38s} {t * 1e3:8.2f} ms  "
              f"{base / t:6.2f}x")


def why_it_wins():
    print("\n=== Why: bytes each rank ships across InfiniBand ===")
    wl = PipelineWorkload.build(4, SEQ, HIDDEN, world_size=32, num_groups=2)
    meg_send = wl.send
    print(f"  Megatron-LM: {meg_send.per_rank_bytes() / 2**20:7.1f} MiB "
          f"(replicated — every rank sends the same data)")
    wl2 = PipelineWorkload.build(4, SEQ, HIDDEN, world_size=32, num_groups=2)
    sched = wl2.schedule_coconet()
    from repro.core import ops

    cc_send = next(
        e for e in sched.program.operations if isinstance(e, ops.Send)
    )
    print(f"  CoCoNet:     {cc_send.per_rank_bytes() / 2**20:7.1f} MiB "
          f"(sliced — 1/16th each, gathered on the other node)")


def correctness():
    print("\n=== The transformed pipeline computes identical values ===")
    rng = np.random.RandomState(5)
    B, S, H, G = 2, 8, 16, 4
    inputs = {
        "in": rng.randn(G, B, S, H), "b": rng.randn(H),
        "r": rng.randn(B, S, H),
    }
    outs = {}
    for name in ("megatron", "coconet"):
        wl = PipelineWorkload.build(
            B, S, H, world_size=2 * G, num_groups=2, dtype=FP32,
            dropout_seed=11,
        )
        sched = getattr(wl, f"schedule_{name}")()
        res = Executor().run(sched.program, inputs)
        outs[name] = res.output(sched.program.outputs[0].name)
    diff = float(np.abs(outs["megatron"] - outs["coconet"]).max())
    print(f"  max |megatron - coconet| = {diff:.2e}")
    assert diff < 1e-6


def table5_summary():
    print("\n=== Table 5: end-to-end inference stage estimate ===")
    for model, r in run_table5().items():
        print(f"  {model}: {r['megatron_stage_ms']:.1f} ms -> "
              f"{r['coconet_stage_ms']:.1f} ms per stage  "
              f"({r['speedup']:.2f}x; paper reports {r['paper']:.2f}x)")


if __name__ == "__main__":
    schedule_progression()
    why_it_wins()
    correctness()
    table5_summary()
