#!/usr/bin/env python
"""Data-parallel Adam: autotune, compile, and train (Section 4, §6.1).

Builds Figure 6a's Adam parameter-update program, lets the autotuner
pick the best schedule for two very different tensor sizes (showing the
crossover of Figure 10), compiles the winning schedule to executable
generated code, registers it with the PyTorch-style frontend, and runs
a few simulated training steps over *scattered* per-layer tensors.
"""

import numpy as np

from repro.cluster import Cluster
from repro.core.autotuner import Autotuner
from repro.frontend.integration import DistributedModule
from repro.workloads.adam import AdamWorkload, adam_reference

WORLD = 8  # simulated data-parallel ranks


def autotune_demo():
    print("=== Autotuning Adam at two sizes (256 GPUs) ===")
    cluster = Cluster(16)
    for exp in (12, 28):
        wl = AdamWorkload.build(2**exp, 256)
        result = Autotuner(cluster).tune(wl.program)
        print(f"\n2^{exp} elements: {len(result.candidates)} schedules "
              f"explored in {result.elapsed_seconds * 1e3:.0f} ms")
        print(f"  best: {result.best.name} "
              f"({result.best.time * 1e6:.1f} us)")


def training_demo():
    print("\n=== Simulated training with the fused schedule ===")
    n_elements = 96
    from repro.core import FP32

    wl = AdamWorkload.build(n_elements, WORLD, grad_dtype=FP32)
    sched = wl.schedule_fused()
    print("schedule:", "; ".join(sched.steps[:3]), "...")

    dist = DistributedModule()
    dist.init_process_group()
    adam_step = dist.register(sched, name="fused_adam")
    print(f"compiled: {adam_step.compiled.loc()} generated lines")

    # scattered per-layer parameters, as a real framework stores them
    rng = np.random.RandomState(1)
    layers = [rng.randn(16), rng.randn(48), rng.randn(32)]
    adam_step.prepare_scattered("p", layers)

    m = np.zeros(n_elements)
    v = np.zeros(n_elements)
    ref_p = adam_step.bucket_table("p").gather_flat().copy()
    ref_m, ref_v = m.copy(), v.copy()

    for step in range(1, 4):
        grads = rng.randn(WORLD, n_elements) * 0.1
        result = adam_step(
            dict(g=grads, p=None, m=m, v=v, lr=0.01, t=float(step))
        )
        m = result.tensor_state("m")
        v = result.tensor_state("v")
        ref_p, ref_m, ref_v = adam_reference(
            grads, ref_p, ref_m, ref_v, 0.01, float(step)
        )
        err = float(np.abs(result.tensor_state("p") - ref_p).max())
        print(f"step {step}: |p| mean = "
              f"{float(np.abs(ref_p).mean()):.4f}, "
              f"error vs reference Adam = {err:.2e}")

    # the per-layer tensors were updated in place through the buckets
    updated = np.concatenate([t for t in layers])
    assert np.allclose(updated, result.tensor_state("p"), rtol=1e-5)
    print("scattered per-layer tensors updated in place — no copies")


if __name__ == "__main__":
    autotune_demo()
    training_demo()
