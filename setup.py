"""Setup shim.

The environment has no `wheel` package (offline), so PEP 660 editable
installs fail; `python setup.py develop` (or `pip install -e .` with a
setuptools that can fall back to it) uses this shim instead. All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
